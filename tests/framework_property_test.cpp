// Cross-problem framework invariants: every CamelotProblem in the
// library must (a) honour its declared degree bound, (b) produce a
// proof that passes independent verification, and (c) behave correctly
// at the exact unique-decoding radius boundary.
#include <gtest/gtest.h>

#include <functional>

#include "apps/conv3sum.hpp"
#include "apps/csp2.hpp"
#include "apps/hamming.hpp"
#include "apps/ov.hpp"
#include "core/cluster.hpp"
#include "core/verifier.hpp"
#include "count/clique_camelot.hpp"
#include "count/triangle_camelot.hpp"
#include "exp/chromatic.hpp"
#include "exp/hamilton.hpp"
#include "exp/permanent.hpp"
#include "exp/setcover.hpp"
#include "exp/setpartition.hpp"
#include "exp/tutte.hpp"
#include "field/primes.hpp"
#include "graph/generators.hpp"
#include "rs/gao.hpp"

namespace camelot {
namespace {

using ProblemFactory = std::function<std::unique_ptr<CamelotProblem>()>;

struct NamedFactory {
  const char* label;
  ProblemFactory make;
};

std::vector<NamedFactory> all_problems() {
  return {
      {"cliques",
       [] {
         return std::make_unique<CliqueCountProblem>(
             gnp(6, 0.6, 1), 6, strassen_decomposition());
       }},
      {"triangles",
       [] {
         return std::make_unique<TriangleCountProblem>(
             gnm(10, 20, 2), strassen_decomposition());
       }},
      {"chromatic",
       [] { return std::make_unique<ChromaticProblem>(gnp(6, 0.5, 3)); }},
      {"tutte",
       [] { return std::make_unique<TutteProblem>(gnm(6, 7, 4)); }},
      {"exact-covers",
       [] {
         return std::make_unique<ExactCoverProblem>(
             6, std::vector<u64>{0b000011, 0b001100, 0b110000, 0b111100,
                                 0b001111},
             3);
       }},
      {"set-covers",
       [] {
         return std::make_unique<SetCoverProblem>(
             6, std::vector<u64>{0b000111, 0b111000, 0b010101, 0b101010},
             2);
       }},
      {"permanent",
       [] {
         return std::make_unique<PermanentProblem>(IntMatrix::random(6, 3, 5));
       }},
      {"hamilton",
       [] { return std::make_unique<HamiltonCycleProblem>(gnp(7, 0.6, 6)); }},
      {"ov",
       [] {
         return std::make_unique<OrthogonalVectorsProblem>(
             BoolMatrix::random(8, 4, 0.4, 7),
             BoolMatrix::random(8, 4, 0.4, 8));
       }},
      {"hamming",
       [] {
         return std::make_unique<HammingDistributionProblem>(
             BoolMatrix::random(5, 3, 0.5, 9),
             BoolMatrix::random(5, 3, 0.5, 10));
       }},
      {"conv3sum",
       [] {
         return std::make_unique<Conv3SumProblem>(
             std::vector<u64>{1, 2, 3, 4, 5, 8}, 4);
       }},
      {"csp2",
       [] {
         return std::make_unique<Csp2Problem>(
             Csp2Instance::random(6, 2, 3, 0.5, 11),
             strassen_decomposition());
       }},
  };
}

class AllProblems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllProblems, HonestEvaluationsInterpolateWithinDegreeBound) {
  // Interpolate through d+1 honest evaluations, then predict fresh
  // points: if deg P exceeded the declared bound this would fail.
  auto problem = all_problems()[GetParam()].make();
  const ProofSpec spec = problem->spec();
  const u64 q = find_ntt_prime(
      std::max<u64>(spec.min_modulus, 2 * (spec.degree_bound + 2)), 8);
  PrimeField f(q);
  ReedSolomonCode code(f, spec.degree_bound, spec.degree_bound + 1);
  auto ev = problem->make_evaluator(f);
  std::vector<u64> word(code.length());
  for (std::size_t i = 0; i < word.size(); ++i) {
    word[i] = ev->eval(code.points()[i]);
  }
  Poly proof = code.interpolate_received(word);
  EXPECT_LE(proof.degree(), static_cast<int>(spec.degree_bound));
  for (u64 probe : {spec.degree_bound + 5, q - 3, q / 2}) {
    EXPECT_EQ(ev->eval(probe), poly_eval(proof, probe, f))
        << all_problems()[GetParam()].label << " probe=" << probe;
  }
}

TEST_P(AllProblems, HonestProofVerifiesAndRecoverCountMatchesSpec) {
  auto problem = all_problems()[GetParam()].make();
  const ProofSpec spec = problem->spec();
  const u64 q = find_ntt_prime(
      std::max<u64>(spec.min_modulus, 2 * (spec.degree_bound + 2)), 8);
  PrimeField f(q);
  ReedSolomonCode code(f, spec.degree_bound, spec.degree_bound + 1);
  auto ev = problem->make_evaluator(f);
  std::vector<u64> word(code.length());
  for (std::size_t i = 0; i < word.size(); ++i) {
    word[i] = ev->eval(code.points()[i]);
  }
  Poly proof = code.interpolate_received(word);
  VerifyResult vr = verify_proof_with(*ev, proof, 2, 99);
  EXPECT_TRUE(vr.accepted) << all_problems()[GetParam()].label;
  EXPECT_EQ(problem->recover(proof, f).size(), spec.answer_count);
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllProblems,
                         ::testing::Range<std::size_t>(0, 12));

TEST(RadiusBoundary, ExactRadiusCorrectsOneMoreFails) {
  // Symbol-granular boundary: exactly radius errors decode; one more
  // random error must not produce a silently wrong *verified* proof.
  OrthogonalVectorsProblem problem(BoolMatrix::random(6, 4, 0.4, 1),
                                   BoolMatrix::random(6, 4, 0.4, 2));
  const ProofSpec spec = problem.spec();
  const std::size_t e = 2 * (spec.degree_bound + 1);
  const u64 q = find_ntt_prime(std::max<u64>(spec.min_modulus, e + 1), 8);
  PrimeField f(q);
  ReedSolomonCode code(f, spec.degree_bound, e);
  auto ev = problem.make_evaluator(f);
  std::vector<u64> clean(e);
  for (std::size_t i = 0; i < e; ++i) clean[i] = ev->eval(code.points()[i]);
  GaoResult base = gao_decode(code, clean);
  ASSERT_EQ(base.status, DecodeStatus::kOk);
  const Poly truth = base.message;

  std::mt19937_64 rng(5);
  const std::size_t radius = code.decoding_radius();
  // Exactly radius errors: decoded message equals the honest proof.
  auto word = clean;
  for (std::size_t i = 0; i < radius; ++i) {
    word[i] = f.add(word[i], 1 + rng() % (f.modulus() - 1));
  }
  GaoResult at_radius = gao_decode(code, word);
  ASSERT_EQ(at_radius.status, DecodeStatus::kOk);
  EXPECT_TRUE(poly_equal(at_radius.message, truth));
  EXPECT_EQ(at_radius.error_locations.size(), radius);

  // radius + 1 errors: either decode failure, or the decoded proof
  // differs and the random-point check rejects it.
  word[radius] = f.add(word[radius], 17);
  GaoResult beyond = gao_decode(code, word);
  if (beyond.status == DecodeStatus::kOk &&
      !poly_equal(beyond.message, truth)) {
    VerifyResult vr = verify_proof_with(*ev, beyond.message, 6, 7);
    EXPECT_FALSE(vr.accepted);
  }
  SUCCEED();
}

TEST(RadiusBoundary, SilentNodesAreErasuresNotCatastrophes) {
  // Silent nodes emit zeros; as long as the number of zeroed symbols
  // stays within the radius the answer survives.
  TriangleCountProblem problem(gnm(10, 18, 3), strassen_decomposition());
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.redundancy = 2.0;
  Cluster cluster(cfg);
  ByzantineAdversary adversary({0, 5}, ByzantineStrategy::kSilent, 1);
  RunReport report = cluster.run(problem, &adversary);
  EXPECT_TRUE(report.success);
}

}  // namespace
}  // namespace camelot
