// Tests for the observability core (obs/): wait-free metric updates
// vs racing scrapes, histogram quantile/window/merge arithmetic, the
// Prometheus and JSON exporters, category-trace mask parsing, and the
// RAII stage spans.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace camelot {
namespace obs {
namespace {

TEST(Counter, MonotoneUnderConcurrentScrape) {
  Registry reg;
  Counter& c = reg.counter("test_events_total");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 200000;

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t now = c.value();
      ASSERT_GE(now, last);  // never observed going backwards
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) c.inc();
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(c.value(), kWriters * kPerWriter);  // nothing lost
}

TEST(Gauge, SetAddAndHighWater) {
  Registry reg;
  Gauge& g = reg.gauge("test_depth");
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  Gauge& hw = reg.gauge("test_depth_high_water");
  hw.max_of(3);
  hw.max_of(7);
  hw.max_of(4);  // never lowers
  EXPECT_EQ(hw.value(), 7);
}

TEST(Histogram, TotalEqualsCountOnEveryRacingScrape) {
  // The torn-free contract: count() is *defined* as the sum of the
  // bins, so a scrape concurrent with writers is internally consistent
  // (monotone count, bins summing to it) on every read.
  Registry reg;
  Histogram& h = reg.histogram("test_latency_seconds");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 100000;

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Histogram::Snapshot snap = h.snapshot();
      std::uint64_t sum = 0;
      for (std::uint64_t b : snap.bins) sum += b;
      ASSERT_EQ(snap.count(), sum);
      ASSERT_GE(snap.count(), last);
      last = snap.count();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        // Spread observations across the whole ladder.
        h.observe(1e-4 * static_cast<double>((w * kPerWriter + i) % 1000));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(h.snapshot().count(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({0.001, 0.01, 0.1});
  // 90 fast observations, 10 slow: p50 lands in the first bucket,
  // p95 in the second.
  for (int i = 0; i < 90; ++i) h.observe(0.0005);
  for (int i = 0; i < 10; ++i) h.observe(0.005);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count(), 100u);
  const double p50 = snap.quantile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 0.001);
  const double p95 = snap.quantile(0.95);
  EXPECT_GT(p95, 0.001);
  EXPECT_LE(p95, 0.01);
  // The +inf bucket clamps to the last finite bound.
  h.observe(5.0);
  EXPECT_EQ(h.snapshot().quantile(1.0), 0.1);
  // Empty histogram quantile is 0.
  EXPECT_EQ(Histogram({1.0}).snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, MeanTracksSum) {
  Histogram h({1.0});
  h.observe(0.25);
  h.observe(0.75);
  EXPECT_NEAR(h.snapshot().mean(), 0.5, 1e-9);
  EXPECT_EQ(Histogram({1.0}).snapshot().mean(), 0.0);
}

TEST(Histogram, DeltaSinceWindowsABatch) {
  Histogram h({0.001, 0.01});
  h.observe(0.0005);  // pre-window noise
  const Histogram::Snapshot before = h.snapshot();
  for (int i = 0; i < 5; ++i) h.observe(0.005);
  const Histogram::Snapshot batch = h.snapshot().delta_since(before);
  EXPECT_EQ(batch.count(), 5u);
  EXPECT_EQ(batch.bins[0], 0u);  // the pre-window observation subtracted out
  EXPECT_EQ(batch.bins[1], 5u);
  EXPECT_NEAR(batch.sum_seconds, 0.025, 1e-9);
  EXPECT_THROW(batch.delta_since(Histogram({1.0}).snapshot()),
               std::invalid_argument);
}

TEST(Histogram, DeltaSinceEmptyBaselineIsFullWindow) {
  // A default-constructed Snapshot is the "before anything happened"
  // baseline (bench windowing starts from one); it must yield the
  // whole later snapshot, not a bucket-mismatch throw. Only a
  // populated baseline with different buckets is a caller error.
  Histogram h({0.001, 0.01});
  h.observe(0.005);
  h.observe(0.005);
  const Histogram::Snapshot window =
      h.snapshot().delta_since(Histogram::Snapshot{});
  EXPECT_EQ(window.count(), 2u);
  EXPECT_EQ(window.bins[1], 2u);
  EXPECT_NEAR(window.sum_seconds, 0.01, 1e-9);
}

TEST(Histogram, MergeAddsAcrossWorkers) {
  Histogram a({0.001, 0.01}), b({0.001, 0.01});
  a.observe(0.0005);
  b.observe(0.005);
  b.observe(0.005);
  Histogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.bins[0], 1u);
  EXPECT_EQ(merged.bins[1], 2u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, ReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h_seconds", {1.0, 2.0});
  // A second resolve with different bounds gets the existing one.
  Histogram& h2 = reg.histogram("h_seconds", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  // Unspecified bounds default to the latency ladder.
  EXPECT_EQ(reg.histogram("d_seconds").bounds(),
            Histogram::default_latency_bounds());
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  Registry reg;
  reg.counter("b_total").inc(2);
  reg.counter("a_total").inc(1);
  reg.gauge("g").set(-4);
  reg.histogram("h_seconds", {1.0}).observe(0.5);
  const Registry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a_total");
  EXPECT_EQ(snap.counters[1].first, "b_total");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 1u);
}

TEST(Export, PrometheusTextFormat) {
  Registry reg;
  reg.counter("jobs_total").inc(42);
  reg.gauge("depth").set(3);
  Histogram& h = reg.histogram("lat_seconds", {0.001, 0.01});
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(2.0);  // +inf bucket
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE jobs_total counter\njobs_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Cumulative le-buckets ending in +Inf == count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.01\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum "), std::string::npos);
}

TEST(Export, JsonSnapshot) {
  Registry reg;
  reg.counter("jobs_total").inc(7);
  reg.histogram("lat_seconds", {0.5}).observe(0.25);
  const std::string json = render_json(reg);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"lat_seconds\": {\"bounds\": [0.5], "
                      "\"bins\": [1, 0]"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Raw bins (not cumulative): merge tooling needs the per-bucket
  // counts.
  EXPECT_EQ(json.find("\"le\""), std::string::npos);
}

TEST(Trace, ParsesCategoryLists) {
  EXPECT_EQ(parse_trace_categories(nullptr), 0u);
  EXPECT_EQ(parse_trace_categories(""), 0u);
  EXPECT_EQ(parse_trace_categories("sched"), kTraceSched);
  EXPECT_EQ(parse_trace_categories("sched,stream"),
            kTraceSched | kTraceStream);
  EXPECT_EQ(parse_trace_categories("field,poly,rs,stream,sched"),
            kTraceField | kTracePoly | kTraceRs | kTraceStream | kTraceSched);
  EXPECT_EQ(parse_trace_categories("all"), static_cast<std::uint32_t>(
                                               kTraceAll));
  EXPECT_EQ(parse_trace_categories("1"), static_cast<std::uint32_t>(
                                             kTraceAll));
  // Unknown tokens are ignored, known ones still land.
  EXPECT_EQ(parse_trace_categories("bogus,rs"), kTraceRs);
}

TEST(Trace, MaskControlsEnabledCategories) {
  set_trace_mask(kTraceRs | kTraceStream);
  EXPECT_TRUE(trace_enabled(kTraceRs));
  EXPECT_TRUE(trace_enabled(kTraceStream));
  EXPECT_FALSE(trace_enabled(kTraceSched));
  EXPECT_FALSE(trace_enabled(kTraceField));
  set_trace_mask(0);
  EXPECT_FALSE(trace_enabled(kTraceRs));
}

TEST(Export, JsonRoundTripsThroughParser) {
  Registry reg;
  reg.counter("camelot_jobs_total").inc(41);
  reg.counter("camelot_errors_total");
  reg.gauge("camelot_queue_depth").set(-3);
  Histogram& h = reg.histogram("camelot_job_latency_seconds");
  h.observe(0.0002);
  h.observe(0.4);
  h.observe(1e9);  // lands in the +inf bin

  const Registry::Snapshot snap = reg.snapshot();
  const Registry::Snapshot parsed = parse_json_snapshot(render_json(snap));

  ASSERT_EQ(parsed.counters, snap.counters);
  ASSERT_EQ(parsed.gauges, snap.gauges);
  ASSERT_EQ(parsed.histograms.size(), snap.histograms.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(parsed.histograms[i].first, snap.histograms[i].first);
    EXPECT_EQ(parsed.histograms[i].second.bounds,
              snap.histograms[i].second.bounds);
    EXPECT_EQ(parsed.histograms[i].second.bins,
              snap.histograms[i].second.bins);
    EXPECT_EQ(parsed.histograms[i].second.count(),
              snap.histograms[i].second.count());
  }

  // An empty registry round-trips too (the emitter's empty-object
  // shape is slightly different).
  Registry empty;
  const Registry::Snapshot eparsed =
      parse_json_snapshot(render_json(empty.snapshot()));
  EXPECT_TRUE(eparsed.counters.empty());
  EXPECT_TRUE(eparsed.gauges.empty());
  EXPECT_TRUE(eparsed.histograms.empty());
}

TEST(Export, ParserRejectsMalformedSnapshots) {
  EXPECT_THROW(parse_json_snapshot(""), std::runtime_error);
  EXPECT_THROW(parse_json_snapshot("{}"), std::runtime_error);
  EXPECT_THROW(parse_json_snapshot("{\"counters\": {\"a\": 1}"),
               std::runtime_error);
  Registry reg;
  reg.counter("x_total").inc();
  const std::string good = render_json(reg.snapshot());
  EXPECT_THROW(parse_json_snapshot(good + "trailing"), std::runtime_error);
  // A histogram whose declared count disagrees with its bins is a
  // corrupted frame, not a mergeable scrape.
  EXPECT_THROW(
      parse_json_snapshot(
          "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
          "    \"h\": {\"bounds\": [1], \"bins\": [2, 0], \"sum\": 0.5, "
          "\"count\": 7}\n  }\n}\n"),
      std::runtime_error);
}

TEST(Export, MergeSnapshotSumsAndInserts) {
  Registry a;
  a.counter("shared_total").inc(5);
  a.gauge("depth").set(2);
  Histogram& ha = a.histogram("lat_seconds");
  ha.observe(0.001);
  ha.observe(2.0);

  Registry b;
  b.counter("shared_total").inc(7);
  b.counter("only_b_total").inc(3);
  b.gauge("depth").set(4);
  Histogram& hb = b.histogram("lat_seconds");
  hb.observe(0.001);

  Registry::Snapshot dst = a.snapshot();
  merge_snapshot(dst, b.snapshot());

  for (const auto& [name, value] : dst.counters) {
    if (name == "shared_total") EXPECT_EQ(value, 12u);
    if (name == "only_b_total") EXPECT_EQ(value, 3u);
  }
  for (const auto& [name, value] : dst.gauges) {
    if (name == "depth") EXPECT_EQ(value, 6);
  }
  ASSERT_EQ(dst.histograms.size(), 1u);
  EXPECT_EQ(dst.histograms[0].second.count(), 3u);
  // Bins add element-wise: both 0.001 observations share a bucket.
  const Histogram::Snapshot sa = ha.snapshot();
  const Histogram::Snapshot sb = hb.snapshot();
  for (std::size_t i = 0; i < sa.bins.size(); ++i) {
    EXPECT_EQ(dst.histograms[0].second.bins[i], sa.bins[i] + sb.bins[i]);
  }
}

TEST(Trace, StageSpanObservesHistogram) {
  Registry reg;
  Histogram& h = reg.histogram("span_seconds");
  {
    StageSpan span(&h, kTraceSched, "prepare", 97);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_GT(snap.sum_seconds, 0.0);
  // A null histogram is fine (trace-only span).
  { StageSpan span(nullptr, kTraceSched, "decode", 97); }
}

}  // namespace
}  // namespace obs
}  // namespace camelot
