// Tests for the half-GCD engine (poly/hgcd.hpp): bit-identity of the
// recursive cascade against the classical partial xgcd across forced
// crossovers, backends and fallback primes; dense-error decode round
// trips through the Gao dispatcher; and golden streaming-vs-barrier
// session equality on the forced-HGCD path.
#include "poly/hgcd.hpp"

#include <gtest/gtest.h>

#include <random>

#include "apps/ov.hpp"
#include "core/proof_session.hpp"
#include "core/symbol_stream.hpp"
#include "field/primes.hpp"
#include "rs/code_cache.hpp"
#include "rs/gao.hpp"
#include "rs/reed_solomon.hpp"

namespace camelot {
namespace {

Poly random_poly(std::size_t deg, const PrimeField& f, std::mt19937_64& rng) {
  Poly p;
  p.c.resize(deg + 1);
  for (u64& v : p.c) v = rng() % f.modulus();
  if (p.c.back() == 0) p.c.back() = 1;
  return p;
}

// RAII crossover override so a test forcing either path can never
// leak its setting into the rest of the suite.
class HgcdGuard {
 public:
  explicit HgcdGuard(std::size_t forced) { set_hgcd_crossover(forced); }
  ~HgcdGuard() { set_hgcd_crossover(0); }
};

void expect_same_xgcd(const Poly& a, const Poly& b, int stop,
                      const PrimeField& f, std::size_t crossover,
                      XgcdStats* stats = nullptr) {
  Poly g1, u1, v1, g2, u2, v2;
  poly_xgcd_partial(a, b, stop, f, &g1, &u1, &v1);
  poly_xgcd_partial_hgcd(a, b, stop, f, &g2, &u2, &v2, nullptr, stats,
                         crossover);
  EXPECT_EQ(g1.c, g2.c) << "stop=" << stop << " crossover=" << crossover;
  EXPECT_EQ(u1.c, u2.c) << "stop=" << stop << " crossover=" << crossover;
  EXPECT_EQ(v1.c, v2.c) << "stop=" << stop << " crossover=" << crossover;
}

TEST(Hgcd, MatchesClassicalAcrossStopsAndCrossovers) {
  PrimeField f(find_ntt_prime(1 << 16, 16));
  std::mt19937_64 rng(1);
  Poly a = random_poly(700, f, rng), b = random_poly(650, f, rng);
  for (int stop : {0, 100, 350, 699}) {
    for (std::size_t crossover : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{1} << 30}) {
      expect_same_xgcd(a, b, stop, f, crossover);
    }
  }
}

TEST(Hgcd, DegenerateShapes) {
  PrimeField f(find_ntt_prime(1 << 16, 16));
  std::mt19937_64 rng(2);
  Poly a = random_poly(40, f, rng), b = random_poly(80, f, rng);
  // deg b > deg a exercises the classical prelude swap.
  expect_same_xgcd(a, b, 20, f, 1);
  // Equal degrees: constant first quotient.
  Poly c = random_poly(80, f, rng);
  expect_same_xgcd(c, b, 30, f, 1);
  // Second operand already below the stop degree (phantom last step).
  Poly small = random_poly(5, f, rng);
  expect_same_xgcd(a, small, 20, f, 1);
  // Zero operands.
  expect_same_xgcd(a, Poly::zero(), 10, f, 1);
  expect_same_xgcd(Poly::zero(), a, 10, f, 1);
  // Exact division inside the sequence (gcd hit before the stop).
  Poly prod{fastdiv_detail::mul_full(std::span<const u64>(a.c),
                                     std::span<const u64>(b.c), f, nullptr)};
  expect_same_xgcd(prod, a, 3, f, 1);
}

TEST(Hgcd, QuotientStepCountInvariantAcrossCrossovers) {
  // Every certified matrix encodes genuine quotient steps, so the
  // step counter must not depend on where the recursion base-cases.
  PrimeField f(find_ntt_prime(1 << 16, 16));
  std::mt19937_64 rng(3);
  Poly a = random_poly(900, f, rng), b = random_poly(880, f, rng);
  XgcdStats classical, recursive;
  expect_same_xgcd(a, b, 450, f, std::size_t{1} << 30, &classical);
  expect_same_xgcd(a, b, 450, f, 1, &recursive);
  EXPECT_EQ(classical.quotient_steps, recursive.quotient_steps);
  EXPECT_EQ(classical.hgcd_calls, 1u);  // entry call, classical base
  EXPECT_GT(recursive.hgcd_calls, 1u);
  EXPECT_GT(classical.quotient_steps, 0u);
}

TEST(Hgcd, ThreeBackendBitIdentity) {
  // Narrow prime so the AVX2 leg runs the double-REDC32 lanes the CRT
  // planner actually selects.
  PrimeField f(find_ntt_prime(1 << 20, 20));
  MontgomeryField m(f);
  std::mt19937_64 rng(4);
  Poly a = random_poly(1200, f, rng), b = random_poly(1100, f, rng);
  const int stop = 600;
  Poly gd, ud, vd;
  poly_xgcd_partial_hgcd(a, b, stop, f, &gd, &ud, &vd, nullptr, nullptr, 1);
  Poly am{m.to_mont_vec(a.c)}, bm{m.to_mont_vec(b.c)};
  Poly gm, um, vm;
  poly_xgcd_partial_hgcd(am, bm, stop, m, &gm, &um, &vm, nullptr, nullptr, 1);
  EXPECT_EQ(m.from_mont_vec(gm.c), gd.c);
  EXPECT_EQ(m.from_mont_vec(um.c), ud.c);
  EXPECT_EQ(m.from_mont_vec(vm.c), vd.c);
  if (!simd_runtime_enabled()) {
    GTEST_SKIP() << "AVX2 unavailable or forced off";
  }
  Poly gs, us, vs;
  poly_xgcd_partial_hgcd(am, bm, stop, MontgomeryAvx2Field(m), &gs, &us, &vs,
                         nullptr, nullptr, 1);
  // The lane kernels must agree with scalar Montgomery word-for-word,
  // not just canonically.
  EXPECT_EQ(gs.c, gm.c);
  EXPECT_EQ(us.c, um.c);
  EXPECT_EQ(vs.c, vm.c);
}

TEST(Hgcd, BinaryFieldFallback) {
  // q = 2 has no NTT: every matrix product inside the cascade falls
  // back to Karatsuba/schoolbook and must still match the classical
  // sequence exactly.
  PrimeField f(2);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Poly a, b;
    a.c.resize(120);
    b.c.resize(100);
    for (u64& v : a.c) v = rng() & 1;
    for (u64& v : b.c) v = rng() & 1;
    a.c.back() = 1;
    b.c.back() = 1;
    expect_same_xgcd(a, b, 50, f, 1);
  }
}

TEST(Hgcd, WidePrimeFallback) {
  // The Mersenne prime 2^61 - 1 (two-adicity 1) has no usable NTT;
  // the cascade's products run Karatsuba on the Montgomery backend
  // and the words must match the division backend's classical run.
  const u64 q = (u64{1} << 61) - 1;
  ASSERT_TRUE(is_prime_u64(q));
  PrimeField f(q);
  MontgomeryField m(f);
  std::mt19937_64 rng(6);
  Poly a = random_poly(300, f, rng), b = random_poly(280, f, rng);
  const int stop = 150;
  Poly g1, u1, v1;
  poly_xgcd_partial(a, b, stop, f, &g1, &u1, &v1);
  Poly am{m.to_mont_vec(a.c)}, bm{m.to_mont_vec(b.c)};
  Poly g2, u2, v2;
  poly_xgcd_partial_hgcd(am, bm, stop, m, &g2, &u2, &v2, nullptr, nullptr, 1);
  EXPECT_EQ(m.from_mont_vec(g2.c), g1.c);
  EXPECT_EQ(m.from_mont_vec(u2.c), u1.c);
  EXPECT_EQ(m.from_mont_vec(v2.c), v1.c);
}

TEST(Hgcd, DenseErrorDecodeRoundTrip) {
  // e = decoding radius errors — the worst-case remainder sequence
  // (all degree-1 quotients) the half-GCD cascade exists for. The
  // forced-HGCD decode must recover the message and agree word-for-
  // word with the forced-classical decode.
  PrimeField f(find_ntt_prime(2048, 12));
  std::mt19937_64 rng(7);
  Poly msg = random_poly(149, f, rng);
  auto decode_with = [&](std::size_t crossover) {
    HgcdGuard guard(crossover);
    ReedSolomonCode code(f, 149, std::size_t{600});
    auto word = code.encode(msg);
    std::mt19937_64 noise(99);
    const std::size_t radius = code.decoding_radius();  // 225
    for (std::size_t i = 0; i < radius; ++i) {
      // Dense contiguous corruption with nonzero deltas.
      word[i] = f.add(word[i], 1 + noise() % (f.modulus() - 1));
    }
    return gao_decode(code, word);
  };
  GaoResult hg = decode_with(1);
  GaoResult cl = decode_with(std::size_t{1} << 30);
  ASSERT_EQ(hg.status, DecodeStatus::kOk);
  ASSERT_EQ(cl.status, DecodeStatus::kOk);
  EXPECT_EQ(hg.message.c, cl.message.c);
  EXPECT_EQ(hg.message.c, msg.c);
  EXPECT_EQ(hg.error_locations, cl.error_locations);
  EXPECT_EQ(hg.corrected, cl.corrected);
  EXPECT_EQ(hg.error_locations.size(), std::size_t{225});
  EXPECT_EQ(hg.quotient_steps, cl.quotient_steps);
  EXPECT_GT(hg.hgcd_calls, 1u);
  EXPECT_EQ(cl.hgcd_calls, 1u);
}

TEST(Hgcd, BeyondRadiusStillFailsIdentically) {
  PrimeField f(find_ntt_prime(2048, 12));
  std::mt19937_64 rng(8);
  Poly msg = random_poly(99, f, rng);
  auto decode_with = [&](std::size_t crossover) {
    HgcdGuard guard(crossover);
    ReedSolomonCode code(f, 99, std::size_t{300});
    auto word = code.encode(msg);
    for (std::size_t i = 0; i < 150; ++i) {  // radius is 100
      word[i] = f.add(word[i], 1 + (i % 5));
    }
    return gao_decode(code, word);
  };
  GaoResult hg = decode_with(1);
  GaoResult cl = decode_with(std::size_t{1} << 30);
  EXPECT_EQ(hg.status, cl.status);
  EXPECT_EQ(hg.quotient_steps, cl.quotient_steps);
}

TEST(Hgcd, StreamingMatchesBarrierDecodeForcedHgcd) {
  HgcdGuard guard(1);
  PrimeField f(find_ntt_prime(4096, 12));
  ReedSolomonCode code(f, 120, std::size_t{500});
  std::mt19937_64 rng(9);
  Poly msg = random_poly(120, f, rng);
  auto word = code.encode(msg);
  for (std::size_t i = 0; i < code.decoding_radius(); ++i) {
    word[(11 * i) % word.size()] = f.add(word[(11 * i) % word.size()], 7);
  }
  GaoResult barrier = gao_decode(code, word);
  StreamingGaoDecoder dec(code);
  // Absorb out of order, in uneven chunks.
  dec.absorb(300, std::span<const u64>(word).subspan(300, 200));
  dec.absorb(0, std::span<const u64>(word).subspan(0, 137));
  dec.absorb(137, std::span<const u64>(word).subspan(137, 163));
  ASSERT_TRUE(dec.ready());
  GaoResult streamed = dec.finish();
  ASSERT_EQ(barrier.status, DecodeStatus::kOk);
  EXPECT_EQ(streamed.status, barrier.status);
  EXPECT_EQ(streamed.message.c, barrier.message.c);
  EXPECT_EQ(streamed.error_locations, barrier.error_locations);
  EXPECT_EQ(streamed.corrected, barrier.corrected);
  EXPECT_EQ(streamed.quotient_steps, barrier.quotient_steps);
  EXPECT_EQ(streamed.hgcd_calls, barrier.hgcd_calls);
}

TEST(Hgcd, GoldenSessionEqualityForcedHgcd) {
  // run_streaming vs run_barrier with the remainder sequence forced
  // through the recursive cascade: reports must stay bit-for-bit
  // equal, and equal to the default-crossover reference.
  OrthogonalVectorsProblem problem(BoolMatrix::random(8, 5, 0.35, 33),
                                   BoolMatrix::random(8, 5, 0.35, 77));
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;
  cfg.num_threads = 2;

  RunReport reference = ProofSession(problem, cfg).run();
  ASSERT_TRUE(reference.success);

  HgcdGuard guard(1);
  auto codes = std::make_shared<CodeCache>();  // fresh codes under the
                                               // forced crossover
  ProofSession streaming(problem, cfg, nullptr, nullptr, codes);
  RunReport a = streaming.run_streaming(LosslessStreamingChannel());
  ProofSession barrier(problem, cfg, nullptr, nullptr, codes);
  RunReport b = barrier.run_barrier();

  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  ASSERT_EQ(a.answers.size(), reference.answers.size());
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i], b.answers[i]);
    EXPECT_EQ(a.answers[i], reference.answers[i]);
  }
  for (std::size_t pi = 0; pi < a.per_prime.size(); ++pi) {
    EXPECT_EQ(a.per_prime[pi].answer_residues,
              b.per_prime[pi].answer_residues);
    EXPECT_EQ(a.per_prime[pi].corrected_symbols,
              b.per_prime[pi].corrected_symbols);
  }
}

}  // namespace
}  // namespace camelot
