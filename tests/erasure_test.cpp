// Tests for the erasure transport and selective repair: LossPlan
// determinism, chunk-boundary independence of the delivered set,
// per-round re-seeding through reopen_for_repair, golden lossy-vs-
// lossless session agreement (same answers, residues and corrected
// symbols once repair converges), loss composed with byzantine
// corruption, and the bounded repair budget settling as a decode
// failure instead of a hang.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "apps/ov.hpp"
#include "core/erasure_stream.hpp"
#include "core/proof_session.hpp"
#include "core/symbol_stream.hpp"

namespace camelot {
namespace {

ClusterConfig small_config(std::size_t nodes = 4, double redundancy = 2.0) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.redundancy = redundancy;
  return cfg;
}

std::unique_ptr<CamelotProblem> make_problem() {
  return std::make_unique<OrthogonalVectorsProblem>(
      BoolMatrix::random(8, 5, 0.35, 11), BoolMatrix::random(8, 5, 0.35, 22));
}

StreamSpec spec_for(const PrimeField& f, std::span<const std::size_t> owners,
                    std::span<const u64> points, u64 seed = 42) {
  StreamSpec spec;
  spec.prime = f.modulus();
  spec.code_length = owners.size();
  spec.owners = owners;
  spec.points = points;
  spec.field = &f;
  spec.stream_seed = seed;
  return spec;
}

// Drains a stream into (position -> value), asserting no position is
// delivered twice.
std::map<std::size_t, u64> drain(SymbolStream& stream) {
  std::map<std::size_t, u64> got;
  while (auto chunk = stream.poll()) {
    for (std::size_t j = 0; j < chunk->symbols.size(); ++j) {
      const auto [it, fresh] =
          got.emplace(chunk->offset + j, chunk->symbols[j]);
      EXPECT_TRUE(fresh) << "position " << chunk->offset + j
                         << " delivered twice";
      (void)it;
    }
  }
  return got;
}

// ---- LossPlan ------------------------------------------------------------

TEST(LossPlan, DeterministicAndRateEdges) {
  const LossPlan a = LossPlan::make(256, 0.3, 99);
  const LossPlan b = LossPlan::make(256, 0.3, 99);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.drop_count, b.drop_count);
  EXPECT_GT(a.drop_count, 0u);
  EXPECT_LT(a.drop_count, 256u);

  const LossPlan none = LossPlan::make(256, 0.0, 99);
  EXPECT_EQ(none.drop_count, 0u);
  const LossPlan all = LossPlan::make(256, 1.0, 99);
  EXPECT_EQ(all.drop_count, 256u);

  const LossPlan other_seed = LossPlan::make(256, 0.3, 100);
  EXPECT_NE(a.dropped, other_seed.dropped);
}

// ---- ErasureStream mechanics ---------------------------------------------

TEST(ErasureStream, DeliveredSetIndependentOfChunkBoundaries) {
  PrimeField f(97);
  const std::size_t e = 64;
  std::vector<std::size_t> owners(e);
  std::vector<u64> points(e);
  for (std::size_t i = 0; i < e; ++i) {
    owners[i] = i / 16;
    points[i] = i + 1;
  }
  std::vector<u64> word(e);
  std::iota(word.begin(), word.end(), u64{5});

  ErasureStreamingChannel channel(LossSpec{0.4, 7});
  // One big push vs. many small pushes of the same word.
  auto one = channel.open(spec_for(f, owners, points));
  one->push({.offset = 0, .node = 0, .symbols = word});
  one->close();
  const auto got_one = drain(*one);
  EXPECT_TRUE(one->exhausted());

  auto many = channel.open(spec_for(f, owners, points));
  for (std::size_t lo = 0; lo < e; lo += 5) {
    const std::size_t hi = std::min(e, lo + 5);
    many->push({.offset = lo,
                .node = owners[lo],
                .symbols = std::vector<u64>(word.begin() + long(lo),
                                            word.begin() + long(hi))});
  }
  many->close();
  const auto got_many = drain(*many);

  EXPECT_EQ(got_one, got_many);
  EXPECT_GT(got_one.size(), 0u);
  EXPECT_LT(got_one.size(), e);  // rate 0.4 must drop something
  for (const auto& [pos, value] : got_one) {
    EXPECT_EQ(value, word[pos]);  // survivors are unmodified
  }
}

TEST(ErasureStream, RepairRoundsReseedTheLossSchedule) {
  PrimeField f(97);
  const std::size_t e = 96;
  std::vector<std::size_t> owners(e, 0);
  std::vector<u64> points(e);
  std::iota(points.begin(), points.end(), u64{1});
  std::vector<u64> word(e, 3);

  ErasureStreamingChannel channel(LossSpec{0.5, 21});
  auto stream = channel.open(spec_for(f, owners, points));
  stream->push({.offset = 0, .node = 0, .symbols = word});
  stream->close();
  std::set<std::size_t> have;
  for (const auto& [pos, value] : drain(*stream)) have.insert(pos);
  ASSERT_LT(have.size(), e);

  // Re-push everything still missing, round after round; the per-round
  // re-seed must let the set converge to complete.
  std::size_t round = 0;
  while (have.size() < e && round < 32) {
    ASSERT_TRUE(stream->reopen_for_repair(++round));
    for (std::size_t pos = 0; pos < e; ++pos) {
      if (have.count(pos)) continue;
      stream->push({.offset = pos, .node = 0, .symbols = {word[pos]}});
    }
    stream->close();
    for (const auto& [pos, value] : drain(*stream)) have.insert(pos);
  }
  EXPECT_EQ(have.size(), e) << "loss schedule never converged";
  EXPECT_GT(round, 0u);
}

// ---- Session-level selective repair --------------------------------------

TEST(ErasureSession, LossyRunMatchesLosslessAnswers) {
  auto problem = make_problem();
  ClusterConfig config = small_config();

  ProofSession clean(*problem, config);
  const RunReport lossless = clean.run_streaming(LosslessStreamingChannel());
  ASSERT_TRUE(lossless.success);

  ErasureStreamingChannel lossy(LossSpec{0.05, 1234});
  ProofSession session(*problem, config);
  const RunReport repaired = session.run_streaming(lossy);

  ASSERT_TRUE(repaired.success);
  EXPECT_EQ(repaired.answers, lossless.answers);
  std::size_t total_rounds = 0;
  for (std::size_t pi = 0; pi < repaired.per_prime.size(); ++pi) {
    const auto& lossy_pr = repaired.per_prime[pi];
    const auto& clean_pr = lossless.per_prime[pi];
    EXPECT_EQ(lossy_pr.prime, clean_pr.prime);
    EXPECT_EQ(lossy_pr.decode_status, clean_pr.decode_status);
    EXPECT_EQ(lossy_pr.verified, clean_pr.verified);
    // Repaired symbols carry the exact values the first delivery
    // would have, so the decode outcome is untouched by the weather.
    EXPECT_EQ(lossy_pr.answer_residues, clean_pr.answer_residues);
    EXPECT_EQ(lossy_pr.corrected_symbols, clean_pr.corrected_symbols);
    EXPECT_LE(lossy_pr.repair_rounds, config.repair_budget);
    total_rounds += lossy_pr.repair_rounds;
    EXPECT_EQ(clean_pr.repair_rounds, 0u);
    EXPECT_EQ(clean_pr.repaired_symbols, 0u);
  }
  EXPECT_GT(total_rounds, 0u) << "rate 0.05 should force some repair";
}

TEST(ErasureSession, LossyRunsAreBitIdenticalAcrossDrivers) {
  auto problem = make_problem();
  ClusterConfig config = small_config();
  config.num_threads = 3;

  ErasureStreamingChannel lossy(LossSpec{0.08, 777});
  ProofSession a(*problem, config);
  const RunReport threaded = a.run_streaming(lossy);

  // Same job through the sequential per-prime driver (the unit shard
  // workers run): everything deterministic must agree, including the
  // repair counters and per-node evaluator work.
  ClusterConfig sequential = config;
  sequential.num_threads = 1;
  ProofSession b(*problem, sequential);
  for (std::size_t pi = 0; pi < b.num_primes(); ++pi) {
    b.run_prime_streaming(pi, lossy);
  }
  const RunReport seq = b.report();

  ASSERT_EQ(threaded.success, seq.success);
  EXPECT_EQ(threaded.answers, seq.answers);
  ASSERT_EQ(threaded.per_prime.size(), seq.per_prime.size());
  for (std::size_t pi = 0; pi < threaded.per_prime.size(); ++pi) {
    EXPECT_EQ(threaded.per_prime[pi].answer_residues,
              seq.per_prime[pi].answer_residues);
    EXPECT_EQ(threaded.per_prime[pi].repair_rounds,
              seq.per_prime[pi].repair_rounds);
    EXPECT_EQ(threaded.per_prime[pi].repaired_symbols,
              seq.per_prime[pi].repaired_symbols);
  }
  ASSERT_EQ(threaded.node_stats.size(), seq.node_stats.size());
  for (std::size_t j = 0; j < threaded.node_stats.size(); ++j) {
    EXPECT_EQ(threaded.node_stats[j].symbols_computed,
              seq.node_stats[j].symbols_computed);
  }
}

TEST(ErasureSession, LossComposesWithCorruption) {
  auto problem = make_problem();
  ClusterConfig config = small_config(/*nodes=*/6, /*redundancy=*/2.0);

  // One corrupt node of six keeps the corrupted share (e/6 symbols)
  // inside the unique-decoding radius (~(d+1)/2 at redundancy 2).
  ByzantineAdversary adversary({4}, ByzantineStrategy::kColludingPolynomial,
                               515);
  AdversarialStreamingChannel dark(adversary);
  ProofSession corrupted_only(*problem, config);
  const RunReport baseline = corrupted_only.run_streaming(dark);
  ASSERT_TRUE(baseline.success);

  ErasureStreamingChannel stormy(LossSpec{0.05, 88}, &dark);
  ProofSession session(*problem, config);
  const RunReport stormy_report = session.run_streaming(stormy);

  ASSERT_TRUE(stormy_report.success);
  EXPECT_EQ(stormy_report.answers, baseline.answers);
  for (std::size_t pi = 0; pi < stormy_report.per_prime.size(); ++pi) {
    // The corruption plan is positional and fixed per stream, so the
    // traitor evidence survives the weather bit for bit.
    EXPECT_EQ(stormy_report.per_prime[pi].corrected_symbols,
              baseline.per_prime[pi].corrected_symbols);
    EXPECT_EQ(stormy_report.per_prime[pi].implicated_nodes,
              baseline.per_prime[pi].implicated_nodes);
  }
}

TEST(ErasureSession, TotalLossExhaustsBudgetAndFailsCleanly) {
  auto problem = make_problem();
  ClusterConfig config = small_config();
  config.repair_budget = 2;

  ErasureStreamingChannel blackout(LossSpec{1.0, 5});
  ProofSession session(*problem, config);
  const RunReport report = session.run_streaming(blackout);

  EXPECT_FALSE(report.success);
  EXPECT_TRUE(report.answers.empty());
  for (const auto& pr : report.per_prime) {
    EXPECT_EQ(pr.decode_status, DecodeStatus::kDecodeFailure);
    EXPECT_FALSE(pr.verified);
    EXPECT_EQ(pr.repair_rounds, config.repair_budget);
  }
}

TEST(ErasureSession, RepairCountersAreDeterministic) {
  auto problem = make_problem();
  ClusterConfig config = small_config();
  ErasureStreamingChannel lossy(LossSpec{0.1, 4321});

  ProofSession a(*problem, config);
  const RunReport first = a.run_streaming(lossy);
  ProofSession b(*problem, config);
  const RunReport second = b.run_streaming(lossy);

  ASSERT_EQ(first.per_prime.size(), second.per_prime.size());
  for (std::size_t pi = 0; pi < first.per_prime.size(); ++pi) {
    EXPECT_EQ(first.per_prime[pi].repair_rounds,
              second.per_prime[pi].repair_rounds);
    EXPECT_EQ(first.per_prime[pi].repaired_symbols,
              second.per_prime[pi].repaired_symbols);
  }
}

}  // namespace
}  // namespace camelot
