#include "field/primes.hpp"

#include <gtest/gtest.h>

namespace camelot {
namespace {

TEST(Primes, SmallCases) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(91));  // 7*13
}

TEST(Primes, SieveAgreementUpTo10000) {
  std::vector<bool> comp(10001, false);
  for (u64 i = 2; i * i <= 10000; ++i) {
    if (!comp[i]) {
      for (u64 j = i * i; j <= 10000; j += i) comp[j] = true;
    }
  }
  for (u64 n = 2; n <= 10000; ++n) {
    EXPECT_EQ(is_prime_u64(n), !comp[n]) << n;
  }
}

TEST(Primes, KnownLargePrimes) {
  EXPECT_TRUE(is_prime_u64(2'013'265'921));        // 15*2^27+1 (NTT prime)
  EXPECT_TRUE(is_prime_u64(1'000'000'007));
  EXPECT_TRUE(is_prime_u64(18'446'744'073'709'551'557ull));  // largest u64
  EXPECT_FALSE(is_prime_u64(18'446'744'073'709'551'555ull));
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(is_prime_u64(561));
  EXPECT_FALSE(is_prime_u64(1105));
  EXPECT_FALSE(is_prime_u64(825'265));
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(1'000'000'000), 1'000'000'007u);
}

TEST(Primes, FactorizeSmall) {
  auto f = factorize(360);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], (std::pair<u64, int>{2, 3}));
  EXPECT_EQ(f[1], (std::pair<u64, int>{3, 2}));
  EXPECT_EQ(f[2], (std::pair<u64, int>{5, 1}));
}

TEST(Primes, FactorizeSemiprime) {
  // Two 31-bit primes: forces Pollard rho.
  u64 p = 2'147'483'647, q = 2'147'483'629;
  auto f = factorize(p * q);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].first, q);
  EXPECT_EQ(f[1].first, p);
}

TEST(Primes, FactorizeReconstructs) {
  for (u64 n : {1ull, 2ull, 1024ull, 360'360ull, 999'999'999'989ull,
                123'456'789'123ull}) {
    u64 prod = 1;
    for (auto [p, e] : factorize(n)) {
      EXPECT_TRUE(is_prime_u64(p)) << p;
      for (int i = 0; i < e; ++i) prod *= p;
    }
    EXPECT_EQ(prod, n);
  }
}

TEST(Primes, PrimitiveRootOrders) {
  for (u64 p : {3ull, 5ull, 97ull, 7681ull, 65537ull}) {
    u64 g = primitive_root(p);
    PrimeField f(p);
    // g must have order exactly p-1.
    for (auto [fac, _] : factorize(p - 1)) {
      EXPECT_NE(f.pow(g, (p - 1) / fac), 1u) << "p=" << p;
    }
    EXPECT_EQ(f.pow(g, p - 1), 1u);
  }
}

TEST(Primes, FindNttPrime) {
  u64 q = find_ntt_prime(1000, 12);
  EXPECT_TRUE(is_prime_u64(q));
  EXPECT_GE(q, 1000u);
  EXPECT_EQ((q - 1) % (u64{1} << 12), 0u);
  // Canonical example: the first prime = c*2^12+1 above 1000 is 12289.
  EXPECT_EQ(q, 12289u);
}

TEST(Primes, FindNttPrimesDistinctAscending) {
  auto qs = find_ntt_primes(1 << 20, 16, 5);
  ASSERT_EQ(qs.size(), 5u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_TRUE(is_prime_u64(qs[i]));
    EXPECT_EQ((qs[i] - 1) % (u64{1} << 16), 0u);
    if (i > 0) EXPECT_GT(qs[i], qs[i - 1]);
  }
}

TEST(Primes, FindNttPrimeRejectsBadAdicity) {
  EXPECT_THROW(find_ntt_prime(10, -1), std::invalid_argument);
  EXPECT_THROW(find_ntt_prime(10, 61), std::invalid_argument);
}

}  // namespace
}  // namespace camelot
