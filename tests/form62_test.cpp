#include "count/form62.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

Form62Input random_input(std::size_t n, const PrimeField& f, u64 seed,
                         bool binary = false) {
  std::mt19937_64 rng(seed);
  Form62Input in;
  for (Matrix& m : in.mats) {
    m = Matrix(n, n);
    for (u64& v : m.data()) {
      v = binary ? rng() % 2 : rng() % f.modulus();
    }
  }
  return in;
}

TEST(Form62, PairIndexBijective) {
  std::vector<bool> seen(15, false);
  for (int s = 1; s <= 5; ++s) {
    for (int t = s + 1; t <= 6; ++t) {
      std::size_t idx = form62_pair_index(s, t);
      ASSERT_LT(idx, 15u);
      EXPECT_FALSE(seen[idx]) << s << "," << t;
      seen[idx] = true;
    }
  }
  EXPECT_EQ(form62_pair_index(1, 2), 0u);
  EXPECT_EQ(form62_pair_index(5, 6), 14u);
  EXPECT_THROW(form62_pair_index(2, 2), std::invalid_argument);
  EXPECT_THROW(form62_pair_index(0, 3), std::invalid_argument);
}

TEST(Form62, DirectOnAllOnesCountsTuples) {
  // With every matrix all-ones, X = N^6.
  PrimeField f(1'000'003);
  const std::size_t n = 3;
  Form62Input in;
  for (Matrix& m : in.mats) {
    m = Matrix(n, n);
    for (u64& v : m.data()) v = 1;
  }
  EXPECT_EQ(form62_direct(in, f), ipow(3, 6));
}

class Form62Agreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Form62Agreement, NesetrilPoljakMatchesDirect) {
  PrimeField f(find_ntt_prime(1 << 20, 6));
  Form62Input in = random_input(GetParam(), f, GetParam() * 3 + 1);
  EXPECT_EQ(form62_nesetril_poljak(in, f), form62_direct(in, f));
}

TEST_P(Form62Agreement, NewCircuitStrassenMatchesDirect) {
  PrimeField f(find_ntt_prime(1 << 20, 6));
  const std::size_t n = GetParam();
  TrilinearDecomposition dec = strassen_decomposition();
  const unsigned t = kronecker_exponent(2, n);
  Form62Input in = random_input(n, f, GetParam() * 7 + 2);
  const u64 expect = form62_direct(in, f);
  Form62Input padded = form62_padded(in, ipow(2, t));
  EXPECT_EQ(form62_new_circuit(padded, dec, t, f), expect) << "n=" << n;
}

TEST_P(Form62Agreement, NewCircuitNaiveDecompositionMatchesDirect) {
  PrimeField f(find_ntt_prime(1 << 20, 6));
  const std::size_t n = GetParam();
  TrilinearDecomposition dec = naive_decomposition(2);
  const unsigned t = kronecker_exponent(2, n);
  Form62Input in = random_input(n, f, GetParam() * 11 + 3);
  const u64 expect = form62_direct(in, f);
  Form62Input padded = form62_padded(in, ipow(2, t));
  EXPECT_EQ(form62_new_circuit(padded, dec, t, f), expect) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Form62Agreement,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Form62, PaddingDoesNotChangeValue) {
  // Zero rows/columns contribute nothing to the form.
  PrimeField f(7681);
  Form62Input in = random_input(3, f, 42);
  const u64 expect = form62_direct(in, f);
  Form62Input padded = form62_padded(in, 8);
  EXPECT_EQ(form62_direct(padded, f), expect);
  EXPECT_EQ(form62_nesetril_poljak(padded, f), expect);
}

TEST(Form62, RangeSplitsSumToWhole) {
  // The per-r terms are the parallel work units of Theorem 2: any
  // partition of [0, R) sums to the full value.
  PrimeField f(7681);
  TrilinearDecomposition dec = strassen_decomposition();
  const unsigned t = 2;  // N = 4, R = 49
  Form62Input in = random_input(4, f, 9);
  const u64 whole = form62_new_circuit(in, dec, t, f);
  u64 pieces = 0;
  for (u64 r = 0; r < 49; r += 10) {
    pieces = f.add(pieces,
                   form62_new_circuit_range(in, dec, t, r,
                                            std::min<u64>(r + 10, 49), f));
  }
  EXPECT_EQ(pieces, whole);
}

TEST(Form62, KroneckerExponent) {
  EXPECT_EQ(kronecker_exponent(2, 1), 0u);
  EXPECT_EQ(kronecker_exponent(2, 2), 1u);
  EXPECT_EQ(kronecker_exponent(2, 3), 2u);
  EXPECT_EQ(kronecker_exponent(2, 8), 3u);
  EXPECT_EQ(kronecker_exponent(2, 9), 4u);
  EXPECT_EQ(kronecker_exponent(3, 10), 3u);
}

TEST(Form62, NewCircuitRejectsUnpaddedInput) {
  PrimeField f(97);
  TrilinearDecomposition dec = strassen_decomposition();
  Form62Input in = random_input(3, f, 1);
  EXPECT_THROW(form62_new_circuit(in, dec, 2, f), std::invalid_argument);
}

}  // namespace
}  // namespace camelot
