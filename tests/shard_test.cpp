// Tests for the sharded multi-process service: golden equality of the
// coordinator's assembled RunReport against a single-process
// ProofSession on the same job (lossless, lossy, and mixed
// loss+corruption), shard-death retry, and the fleet observability
// rollup (merged scrape == element-wise sum of the per-process
// scrapes; deterministic counts match the single-process run).
//
// Requires the shardd binary; ctest points CAMELOT_SHARDD at the
// build-tree target. Suites skip (not fail) when it is missing so the
// test binary stays runnable by hand from anywhere.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>

#include "core/erasure_stream.hpp"
#include "core/proof_session.hpp"
#include "core/shard.hpp"
#include "core/symbol_stream.hpp"

namespace camelot {
namespace {

constexpr const char* kProblemSpec = "triangle:12:26:9";

bool shardd_available() {
  const char* path = std::getenv("CAMELOT_SHARDD");
  if (path && *path) return ::access(path, X_OK) == 0;
  return ::access("./shardd", X_OK) == 0;
}

#define REQUIRE_SHARDD()                                              \
  do {                                                                \
    if (!shardd_available()) {                                        \
      GTEST_SKIP() << "shardd binary not found (set CAMELOT_SHARDD)"; \
    }                                                                 \
  } while (0)

ShardJob base_job() {
  ShardJob job;
  job.problem_spec = kProblemSpec;
  job.config.num_nodes = 6;
  job.config.redundancy = 2.0;
  job.config.num_threads = 1;
  // More primes than shards, so a 3-shard fleet has every worker busy
  // (non-zero bandwidth) and a crashed worker always leaves retryable
  // primes behind.
  job.config.num_primes = 5;
  return job;
}

// The single-process reference: same problem, same channel stack,
// same sequential per-prime driver the workers run.
RunReport run_single_process(const ShardJob& job,
                             std::shared_ptr<obs::Registry> registry = nullptr) {
  std::unique_ptr<CamelotProblem> problem =
      make_problem_from_spec(job.problem_spec);
  std::unique_ptr<ByzantineAdversary> adversary;
  std::unique_ptr<StreamingSymbolChannel> base;
  if (job.adversary) {
    adversary = std::make_unique<ByzantineAdversary>(
        job.corrupt_nodes, job.strategy, job.adversary_seed);
    base = std::make_unique<AdversarialStreamingChannel>(*adversary);
  } else {
    base = std::make_unique<LosslessStreamingChannel>();
  }
  std::unique_ptr<StreamingSymbolChannel> top;
  if (job.loss_rate > 0.0) {
    top = std::make_unique<ErasureStreamingChannel>(
        LossSpec{job.loss_rate, job.loss_seed}, base.get());
  }
  ProofSession session(*problem, job.config, nullptr, nullptr, nullptr,
                       std::move(registry));
  const StreamingSymbolChannel& channel = top ? *top : *base;
  for (std::size_t pi = 0; pi < session.num_primes(); ++pi) {
    session.run_prime_streaming(pi, channel);
  }
  return session.report();
}

// Bit-identical up to timing: answers, per-prime reports (including
// the repair counters) and per-node evaluator work must all match.
void expect_reports_equal(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.proof_symbols, b.proof_symbols);
  EXPECT_EQ(a.code_length, b.code_length);
  EXPECT_EQ(a.num_primes, b.num_primes);
  ASSERT_EQ(a.per_prime.size(), b.per_prime.size());
  for (std::size_t pi = 0; pi < a.per_prime.size(); ++pi) {
    EXPECT_EQ(a.per_prime[pi].prime, b.per_prime[pi].prime);
    EXPECT_EQ(a.per_prime[pi].decode_status, b.per_prime[pi].decode_status);
    EXPECT_EQ(a.per_prime[pi].verified, b.per_prime[pi].verified);
    EXPECT_EQ(a.per_prime[pi].answer_residues,
              b.per_prime[pi].answer_residues);
    EXPECT_EQ(a.per_prime[pi].corrected_symbols,
              b.per_prime[pi].corrected_symbols);
    EXPECT_EQ(a.per_prime[pi].implicated_nodes,
              b.per_prime[pi].implicated_nodes);
    EXPECT_EQ(a.per_prime[pi].repair_rounds, b.per_prime[pi].repair_rounds);
    EXPECT_EQ(a.per_prime[pi].repaired_symbols,
              b.per_prime[pi].repaired_symbols);
  }
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t j = 0; j < a.node_stats.size(); ++j) {
    EXPECT_EQ(a.node_stats[j].symbols_computed,
              b.node_stats[j].symbols_computed)
        << "node " << j;
  }
}

const obs::Histogram::Snapshot* find_histogram(
    const obs::Registry::Snapshot& snap, const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::uint64_t counter_value(const obs::Registry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

// ---- Problem factory -----------------------------------------------------

TEST(ShardProtocol, ProblemFactoryParsesAndRejects) {
  auto problem = make_problem_from_spec("triangle:10:20:3");
  EXPECT_EQ(problem->name(), "count-triangles");
  EXPECT_THROW(make_problem_from_spec("triangle:0:0:1"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("hexagon:10:20:3"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("triangle:10"), std::invalid_argument);

  auto clique = make_problem_from_spec("clique:10:20:6:3");
  EXPECT_EQ(clique->name(), "count-k-cliques");
  // 6 | k is Theorem 1's divisibility requirement.
  EXPECT_THROW(make_problem_from_spec("clique:10:20:5:3"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("clique:10:20:0:3"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("clique:0:20:6:3"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("clique:10:20:6"),
               std::invalid_argument);

  auto ov = make_problem_from_spec("ov:8:5:0.5:11");
  EXPECT_EQ(ov->name(), "orthogonal-vectors");
  EXPECT_THROW(make_problem_from_spec("ov:0:5:0.5:11"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("ov:8:0:0.5:11"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("ov:8:5:1.5:11"),
               std::invalid_argument);
  EXPECT_THROW(make_problem_from_spec("ov:8:5:0.5"), std::invalid_argument);
}

// ---- Golden equality -----------------------------------------------------

TEST(ShardCoordinatorTest, LosslessMatchesSingleProcess) {
  REQUIRE_SHARDD();
  const ShardJob job = base_job();
  const RunReport single = run_single_process(job);
  ASSERT_TRUE(single.success);

  ShardOptions options;
  options.num_shards = 3;
  ShardCoordinator fleet(options);
  const RunReport sharded = fleet.run(job);
  expect_reports_equal(sharded, single);
  EXPECT_EQ(fleet.retried_primes(), 0u);
}

TEST(ShardCoordinatorTest, MixedLossAndCorruptionMatchesSingleProcess) {
  REQUIRE_SHARDD();
  ShardJob job = base_job();
  job.loss_rate = 0.05;
  job.loss_seed = 99;
  job.adversary = true;
  // One corrupt node of six keeps the corrupted share (e/6 symbols)
  // inside the unique-decoding radius (~(d+1)/2 at redundancy 2).
  job.corrupt_nodes = {5};
  job.strategy = ByzantineStrategy::kColludingPolynomial;
  job.adversary_seed = 1337;

  const RunReport single = run_single_process(job);
  ASSERT_TRUE(single.success);
  std::size_t repair_rounds = 0;
  for (const auto& pr : single.per_prime) repair_rounds += pr.repair_rounds;
  EXPECT_GT(repair_rounds, 0u) << "loss rate should force selective repair";

  ShardOptions options;
  options.num_shards = 3;
  ShardCoordinator fleet(options);
  const RunReport sharded = fleet.run(job);
  expect_reports_equal(sharded, single);
}

TEST(ShardCoordinatorTest, SurvivesWorkerCrashAndRetries) {
  REQUIRE_SHARDD();
  const ShardJob job = base_job();
  const RunReport single = run_single_process(job);

  ShardOptions options;
  options.num_shards = 3;
  options.crash_shard = 0;
  options.crash_after_primes = 1;
  ShardCoordinator fleet(options);
  const RunReport sharded = fleet.run(job);

  // The dead worker's unfinished primes re-ran on survivors; the
  // assembled report is still bit-identical to the no-crash run.
  expect_reports_equal(sharded, single);
  EXPECT_EQ(fleet.live_shards(), 2u);
  EXPECT_EQ(counter_value(fleet.metrics().snapshot(),
                          "camelot_shard_deaths_total"),
            1u);
  // Five primes round-robined over three shards leave the crashed
  // worker (shard 0: primes 0 and 3) one unfinished prime to retry.
  EXPECT_GT(fleet.retried_primes(), 0u);
}

TEST(ShardCoordinatorTest, ReusableAcrossJobs) {
  REQUIRE_SHARDD();
  const ShardJob job = base_job();
  ShardOptions options;
  options.num_shards = 2;
  ShardCoordinator fleet(options);
  const RunReport first = fleet.run(job);
  const RunReport second = fleet.run(job);
  expect_reports_equal(first, second);
}

// ---- Fleet observability rollup ------------------------------------------

TEST(ShardFleetObs, RollupEqualsSumOfShardScrapes) {
  REQUIRE_SHARDD();
  const ShardJob job = base_job();
  ShardOptions options;
  options.num_shards = 3;
  ShardCoordinator fleet(options);
  const RunReport sharded = fleet.run(job);
  ASSERT_TRUE(sharded.success);

  const obs::Registry::Snapshot coordinator = fleet.metrics().snapshot();
  const obs::Registry::Snapshot merged = fleet.fleet_snapshot();
  const std::vector<std::string>& scrapes = fleet.last_shard_scrapes();
  ASSERT_EQ(scrapes.size(), 3u);

  // Rebuild the rollup by hand from the raw per-shard JSON and the
  // coordinator's own scrape; the fleet snapshot must match it
  // metric by metric, bin by bin.
  obs::Registry::Snapshot expected = coordinator;
  std::size_t live = 0;
  for (const std::string& scrape : scrapes) {
    if (scrape.empty()) continue;
    ++live;
    obs::merge_snapshot(expected, obs::parse_json_snapshot(scrape));
  }
  ASSERT_EQ(live, 3u);

  ASSERT_EQ(merged.histograms.size(), expected.histograms.size());
  for (std::size_t i = 0; i < merged.histograms.size(); ++i) {
    EXPECT_EQ(merged.histograms[i].first, expected.histograms[i].first);
    EXPECT_EQ(merged.histograms[i].second.bins,
              expected.histograms[i].second.bins)
        << merged.histograms[i].first;
  }
  ASSERT_EQ(merged.counters.size(), expected.counters.size());
  for (std::size_t i = 0; i < merged.counters.size(); ++i) {
    EXPECT_EQ(merged.counters[i], expected.counters[i]);
  }

  // Per-shard bandwidth gauges exist and saw real traffic.
  for (std::size_t i = 0; i < 3; ++i) {
    bool found = false;
    for (const auto& [name, value] : merged.gauges) {
      if (name ==
          "camelot_shard_bandwidth_bytes_shard" + std::to_string(i)) {
        found = true;
        EXPECT_GT(value, 0);
      }
    }
    EXPECT_TRUE(found) << "missing bandwidth gauge for shard " << i;
  }

  // Workers settled every prime exactly once.
  EXPECT_EQ(counter_value(merged, "camelot_shard_primes_total"),
            sharded.num_primes);
}

TEST(ShardFleetObs, DeterministicCountsMatchSingleProcessScrape) {
  REQUIRE_SHARDD();
  const ShardJob job = base_job();
  auto registry = std::make_shared<obs::Registry>();
  const RunReport single = run_single_process(job, registry);
  ASSERT_TRUE(single.success);
  const obs::Registry::Snapshot reference = registry->snapshot();

  ShardOptions options;
  options.num_shards = 3;
  ShardCoordinator fleet(options);
  const RunReport sharded = fleet.run(job);
  expect_reports_equal(sharded, single);
  const obs::Registry::Snapshot merged = fleet.fleet_snapshot();

  // Stage observation *counts* are deterministic (one decode/verify/
  // recover per prime, one prepare span per node chunk); only the
  // latency values inside the bins vary. Summed across the fleet they
  // must equal the single-process counts.
  for (const char* name :
       {"camelot_stage_prepare_seconds", "camelot_stage_decode_seconds",
        "camelot_stage_verify_seconds", "camelot_stage_recover_seconds"}) {
    const obs::Histogram::Snapshot* fleet_h = find_histogram(merged, name);
    const obs::Histogram::Snapshot* single_h =
        find_histogram(reference, name);
    ASSERT_NE(fleet_h, nullptr) << name;
    ASSERT_NE(single_h, nullptr) << name;
    EXPECT_EQ(fleet_h->count(), single_h->count()) << name;
  }
}

}  // namespace
}  // namespace camelot
