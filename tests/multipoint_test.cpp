#include "poly/multipoint.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "field/primes.hpp"
#include "poly/lagrange.hpp"

namespace camelot {
namespace {

Poly random_poly(std::size_t deg, const PrimeField& f, std::mt19937_64& rng) {
  Poly p;
  p.c.resize(deg + 1);
  for (u64& v : p.c) v = rng() % f.modulus();
  return p;
}

class TreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSizes, EvaluateMatchesHorner) {
  PrimeField f(find_ntt_prime(1 << 12, 12));
  std::mt19937_64 rng(GetParam());
  const std::size_t n = GetParam();
  std::vector<u64> pts(n);
  std::iota(pts.begin(), pts.end(), u64{1});
  SubproductTree tree(pts, f);
  Poly p = random_poly(n - 1, f, rng);
  auto fast = tree.evaluate(p, f);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fast[i], poly_eval(p, pts[i], f)) << "i=" << i << " n=" << n;
  }
}

TEST_P(TreeSizes, InterpolateRoundTrip) {
  PrimeField f(find_ntt_prime(1 << 12, 12));
  std::mt19937_64 rng(GetParam() + 100);
  const std::size_t n = GetParam();
  std::vector<u64> pts(n), vals(n);
  std::iota(pts.begin(), pts.end(), u64{3});
  for (u64& v : vals) v = rng() % f.modulus();
  SubproductTree tree(pts, f);
  Poly p = tree.interpolate(vals, f);
  EXPECT_LT(p.degree(), static_cast<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(poly_eval(p, pts[i], f), vals[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSizes,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 16, 33, 100,
                                           128, 200));

TEST(SubproductTree, RootIsProductOfLinearFactors) {
  PrimeField f(97);
  std::vector<u64> pts = {2, 5, 11};
  SubproductTree tree(pts, f);
  const Poly& root = tree.root();
  EXPECT_EQ(root.degree(), 3);
  for (u64 x : pts) EXPECT_EQ(poly_eval(root, x, f), 0u);
  EXPECT_NE(poly_eval(root, 1, f), 0u);
  // Monic.
  EXPECT_EQ(root.c.back(), 1u);
}

TEST(SubproductTree, EvaluateHighDegreePolynomial) {
  // Degree of p far exceeds the number of points: the top-level
  // reduction mod the root must kick in.
  PrimeField f(7681);
  std::mt19937_64 rng(9);
  std::vector<u64> pts = {1, 2, 3, 4, 5};
  SubproductTree tree(pts, f);
  Poly p = random_poly(60, f, rng);
  auto got = tree.evaluate(p, f);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(got[i], poly_eval(p, pts[i], f));
  }
}

TEST(SubproductTree, InterpolationRecoversPolynomial) {
  PrimeField f(7681);
  std::mt19937_64 rng(10);
  Poly p = random_poly(20, f, rng);
  std::vector<u64> pts(21);
  std::iota(pts.begin(), pts.end(), u64{1});
  auto vals = multipoint_evaluate(p, pts, f);
  Poly q = interpolate(pts, vals, f);
  EXPECT_TRUE(poly_equal(p, q));
}

TEST(SubproductTree, RejectsEmptyAndMismatch) {
  PrimeField f(17);
  EXPECT_THROW(SubproductTree({}, f), std::invalid_argument);
  SubproductTree tree(std::vector<u64>{1, 2}, f);
  std::vector<u64> vals = {1};
  EXPECT_THROW(tree.interpolate(vals, f), std::invalid_argument);
}

TEST(Lagrange, BasisIsIndicatorOnNodes) {
  PrimeField f(7681);
  for (std::size_t count : {1u, 2u, 5u, 16u}) {
    for (std::size_t i = 0; i < count; ++i) {
      auto basis = lagrange_basis_consecutive(10, count, 10 + i, f);
      for (std::size_t j = 0; j < count; ++j) {
        EXPECT_EQ(basis[j], j == i ? 1u : 0u);
      }
    }
  }
}

TEST(Lagrange, MatchesInterpolationOffNodes) {
  PrimeField f(7681);
  std::mt19937_64 rng(11);
  const std::size_t count = 12;
  std::vector<u64> vals(count);
  for (u64& v : vals) v = rng() % f.modulus();
  std::vector<u64> pts(count);
  std::iota(pts.begin(), pts.end(), u64{1});
  Poly p = interpolate(pts, vals, f);
  for (u64 x0 : {0ull, 100ull, 5000ull, 7680ull}) {
    EXPECT_EQ(lagrange_eval_consecutive(1, vals, x0, f), poly_eval(p, x0, f))
        << x0;
  }
}

TEST(Lagrange, PartitionOfUnity) {
  // Interpolating the all-ones values gives the constant 1 polynomial,
  // so the basis values sum to 1 at any x0.
  PrimeField f(1'000'003);
  for (u64 x0 : {7ull, 123'456ull, 999'999ull}) {
    auto basis = lagrange_basis_consecutive(1, 20, x0, f);
    u64 sum = 0;
    for (u64 b : basis) sum = f.add(sum, b);
    EXPECT_EQ(sum, 1u);
  }
}

TEST(Lagrange, RejectsDegenerate) {
  PrimeField f(17);
  EXPECT_THROW(lagrange_basis_consecutive(0, 0, 1, f), std::invalid_argument);
  EXPECT_THROW(lagrange_basis_consecutive(0, 17, 1, f),
               std::invalid_argument);
}

TEST(Lagrange, StartOffsetConsistency) {
  // Basis over nodes 5..9 at x0 equals basis over 0..4 at x0-5.
  PrimeField f(101);
  auto a = lagrange_basis_consecutive(5, 5, 77, f);
  auto b = lagrange_basis_consecutive(0, 5, 72, f);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace camelot
