// Tests for the region/slab scratch allocator (core/arena.hpp):
// chunk placement and region growth, merge-on-free coalescing,
// alignment, the oversize fallback, ArenaScope binding semantics,
// ScratchAlloc's heap fallback, per-worker isolation under the
// ProofService pool, and the A/B guarantee — bit-identical session
// reports with the arena on and off across all three field backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "apps/conv3sum.hpp"
#include "apps/ov.hpp"
#include "core/arena.hpp"
#include "core/cluster.hpp"
#include "core/proof_service.hpp"
#include "core/proof_session.hpp"
#include "linalg/tensor.hpp"
#include "obs/metrics.hpp"

namespace camelot {
namespace {

// Small regions so growth/oversize paths trigger at test sizes.
constexpr std::size_t kTestRegion = 4096;

TEST(Arena, LazyConstructionAndBumpPlacement) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  EXPECT_EQ(arena.region_count(), 0u);  // nothing until first allocate
  EXPECT_EQ(arena.bytes_reserved(), 0u);

  void* a = arena.allocate(100);
  void* b = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.region_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), kTestRegion);
  // Sequential placement: b sits just past a's rounded payload plus
  // one header.
  EXPECT_GT(b, a);
  EXPECT_EQ(arena.live_chunks(), 2u);
  arena.deallocate(b);
  arena.deallocate(a);
  EXPECT_EQ(arena.live_chunks(), 0u);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Regions persist for reuse.
  EXPECT_EQ(arena.region_count(), 1u);
}

TEST(Arena, PayloadsAre64ByteAligned) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  for (std::size_t sz : {1u, 7u, 63u, 64u, 65u, 100u, 1000u}) {
    void* p = arena.allocate(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment, 0u)
        << "size " << sz;
    arena.deallocate(p);
  }
}

TEST(Arena, GrowsNewRegionsWhenFull) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  std::vector<void*> blocks;
  // Each 1 KiB block + header; a 4 KiB region holds ~3 of them.
  for (int i = 0; i < 12; ++i) blocks.push_back(arena.allocate(1024));
  EXPECT_GT(arena.region_count(), 1u);
  EXPECT_EQ(arena.oversize_fallbacks(), 0u);
  const std::size_t grown = arena.region_count();
  for (void* p : blocks) arena.deallocate(p);
  // Steady state: the regions stay reserved and the next burst fits
  // without growing further.
  blocks.clear();
  for (int i = 0; i < 12; ++i) blocks.push_back(arena.allocate(1024));
  EXPECT_EQ(arena.region_count(), grown);
  for (void* p : blocks) arena.deallocate(p);
}

TEST(Arena, MergeOnFreeCoalescesNeighbours) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  void* a = arena.allocate(256);
  void* b = arena.allocate(256);
  void* c = arena.allocate(256);
  // Exhaust the frontier so the next allocation must go through the
  // first-fit hole scan (bump placement always wins otherwise).
  void* filler = arena.allocate(3008);
  ASSERT_EQ(arena.region_count(), 1u);
  // Free the middle, then the left: they coalesce into one hole, so a
  // request bigger than either (but within their sum plus the
  // absorbed header) lands back at a's address instead of growing.
  arena.deallocate(b);
  arena.deallocate(a);
  void* big = arena.allocate(512);
  EXPECT_EQ(big, a);
  EXPECT_EQ(arena.region_count(), 1u);
  arena.deallocate(big);
  arena.deallocate(c);
  arena.deallocate(filler);
  // Everything freed: the frontier retreated to the region base, so
  // the next allocation is again the first chunk.
  void* fresh = arena.allocate(64);
  EXPECT_EQ(fresh, a);
  arena.deallocate(fresh);
}

TEST(Arena, OversizeRequestsFallBackUpstream) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  void* small = arena.allocate(64);
  void* big = arena.allocate(2 * kTestRegion);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % Arena::kAlignment, 0u);
  EXPECT_EQ(arena.oversize_fallbacks(), 1u);
  EXPECT_EQ(reg.counter("camelot_arena_oversize_fallbacks_total").value(), 1u);
  // Oversize blocks are usable storage and tracked like any chunk.
  static_cast<std::uint8_t*>(big)[0] = 1;
  static_cast<std::uint8_t*>(big)[2 * kTestRegion - 1] = 2;
  EXPECT_EQ(arena.live_chunks(), 2u);
  arena.deallocate(big);
  EXPECT_EQ(arena.live_chunks(), 1u);
  arena.deallocate(small);
}

TEST(Arena, MarkAndReleaseAfterFreeLateChunks) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  void* keep = arena.allocate(128);
  const std::uint64_t m = arena.mark();
  (void)arena.allocate(128);
  (void)arena.allocate(2 * kTestRegion);  // oversize is covered too
  EXPECT_EQ(arena.live_chunks(), 3u);
  arena.release_after(m);
  EXPECT_EQ(arena.live_chunks(), 1u);
  arena.deallocate(keep);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaScope, BindsNestsAndRestores) {
  obs::Registry reg;
  Arena outer_arena(&reg, kTestRegion);
  Arena inner_arena(&reg, kTestRegion);
  ASSERT_EQ(Arena::current(), nullptr);
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(Arena::current(), &outer_arena);
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(Arena::current(), &inner_arena);
      // nullptr is a real binding: it unbinds for the scope (the
      // use_arena=false-under-a-service-worker case).
      {
        ArenaScope off(nullptr);
        EXPECT_EQ(Arena::current(), nullptr);
      }
      EXPECT_EQ(Arena::current(), &inner_arena);
    }
    EXPECT_EQ(Arena::current(), &outer_arena);
  }
  EXPECT_EQ(Arena::current(), nullptr);
}

TEST(ArenaScope, PublishesGaugesToRegistry) {
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  {
    ArenaScope scope(&arena);
    ScratchVec v(100, 7);  // allocates from the bound arena (in-region)
    EXPECT_EQ(v.get_allocator().arena(), &arena);
    EXPECT_GT(arena.bytes_in_use(), 0u);
    EXPECT_EQ(reg.gauge("camelot_arena_region_count").value(), 1);
    EXPECT_GT(reg.gauge("camelot_arena_bytes_reserved").value(), 0);
  }
  // Scope exit published the (now zero) in-use level.
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(reg.gauge("camelot_arena_bytes_in_use").value(), 0);
}

TEST(ScratchAlloc, FallsBackToHeapWhenUnbound) {
  ASSERT_EQ(Arena::current(), nullptr);
  ScratchVec v;
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  v.assign(4096, 42);  // plain operator new underneath
  EXPECT_EQ(v[4095], 42u);
}

TEST(ScratchAlloc, VectorsCarryTheirArenaAcrossScopeExit) {
  // A vector allocated inside a scope frees into the same arena even
  // after the binding is gone — the allocator was captured at
  // construction, so nothing dangles.
  obs::Registry reg;
  Arena arena(&reg, kTestRegion);
  {
    ScratchVec v;
    {
      ArenaScope scope(&arena);
      ScratchVec bound(100, 1);
      v = std::move(bound);
    }
    EXPECT_EQ(v.get_allocator().arena(), &arena);
    EXPECT_GT(arena.live_chunks(), 0u);
  }
  EXPECT_EQ(arena.live_chunks(), 0u);
}

TEST(Arena, PerThreadProcessLocalIsolation) {
  // Two threads allocating through their process-local arenas never
  // observe each other's chunks (the single-threaded-by-design
  // contract the session node workers rely on).
  auto worker = [] {
    Arena& mine = Arena::process_local();
    ArenaScope scope(&mine);
    const std::size_t before = mine.live_chunks();
    ScratchVec v(512, 3);
    EXPECT_EQ(mine.live_chunks(), before + 1);
    for (u64 x : v) EXPECT_EQ(x, 3u);
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
}

// ---- Pipeline integration ------------------------------------------------

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 1.5;
  return cfg;
}

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i], b.answers[i]) << "answer " << i;
  }
  ASSERT_EQ(a.per_prime.size(), b.per_prime.size());
  for (std::size_t pi = 0; pi < a.per_prime.size(); ++pi) {
    EXPECT_EQ(a.per_prime[pi].prime, b.per_prime[pi].prime);
    EXPECT_EQ(a.per_prime[pi].decode_status, b.per_prime[pi].decode_status);
    EXPECT_EQ(a.per_prime[pi].verified, b.per_prime[pi].verified);
    EXPECT_EQ(a.per_prime[pi].answer_residues,
              b.per_prime[pi].answer_residues);
    EXPECT_EQ(a.per_prime[pi].corrected_symbols,
              b.per_prime[pi].corrected_symbols);
  }
}

TEST(ArenaPipeline, SessionBitIdenticalArenaOnVsOff) {
  // The A/B contract behind the CI CAMELOT_ARENA=off leg: the arena
  // moves scratch, never words. Corruption included so decode's
  // remainder sequence (the deepest scratch user) runs for real.
  BoolMatrix ma = BoolMatrix::random(8, 5, 0.35, 11);
  BoolMatrix mb = BoolMatrix::random(8, 5, 0.35, 22);
  OrthogonalVectorsProblem problem(ma, mb);
  ByzantineAdversary adversary({1}, ByzantineStrategy::kRandom, 555);
  for (FieldBackend backend :
       {FieldBackend::kPrimeDivision, FieldBackend::kMontgomery,
        FieldBackend::kMontgomeryAvx2}) {
    // Redundancy 3.0 keeps one traitor node inside the decoding
    // radius, so the corrected decode genuinely runs.
    ClusterConfig cfg;
    cfg.num_nodes = 6;
    cfg.redundancy = 3.0;
    cfg.backend = backend;
    ASSERT_TRUE(cfg.use_arena);
    RunReport with_arena = ProofSession(problem, cfg).run(&adversary);
    cfg.use_arena = false;
    RunReport heap = ProofSession(problem, cfg).run(&adversary);
    ASSERT_TRUE(with_arena.success);
    expect_reports_equal(with_arena, heap);
  }
}

TEST(ArenaPipeline, ServiceWorkersOwnIsolatedArenas) {
  ProofServiceConfig svc;
  svc.num_workers = 4;
  ProofService service(svc);

  ClusterConfig cfg = small_config();
  std::vector<std::future<RunReport>> futures;
  auto p1 = std::make_shared<OrthogonalVectorsProblem>(
      BoolMatrix::random(8, 5, 0.35, 11), BoolMatrix::random(8, 5, 0.35, 22));
  auto p2 = std::make_shared<Conv3SumProblem>(
      std::vector<u64>{3, 1, 4, 1, 5, 9, 2, 6}, 6u);
  for (int round = 0; round < 3; ++round) {
    futures.push_back(service.submit(p1, cfg));
    futures.push_back(service.submit(p2, cfg));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().success);

  if (arena_env_enabled()) {
    // The workers' arenas report into the service registry; after the
    // jobs settled no scratch is left in use, but the regions stay
    // reserved for the next job.
    EXPECT_GT(service.metrics()->gauge("camelot_arena_bytes_reserved").value(),
              0);
    EXPECT_GT(service.metrics()->gauge("camelot_arena_region_count").value(),
              0);
  }
}

TEST(ArenaPipeline, UseArenaOffUnderServiceStaysOnHeap) {
  // A use_arena=false job under an arena-owning worker must unbind for
  // its stages (and still match the arena-on answers).
  ProofServiceConfig svc;
  svc.num_workers = 2;
  ProofService service(svc);
  auto problem = std::make_shared<Conv3SumProblem>(
      std::vector<u64>{3, 1, 4, 1, 5, 9, 2, 6}, 6u);
  ClusterConfig cfg = small_config();
  RunReport on = service.submit(problem, cfg).get();
  cfg.use_arena = false;
  RunReport off = service.submit(problem, cfg).get();
  ASSERT_TRUE(on.success);
  expect_reports_equal(on, off);
}

}  // namespace
}  // namespace camelot
