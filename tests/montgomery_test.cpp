#include "field/montgomery.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

// The Montgomery backend must agree with the division-based PrimeField
// reference on every operation, over primes that stress different
// regimes: tiny, high two-adicity NTT primes (the framework's proof
// moduli) and primes hugging the 2^62 representation bound.
std::vector<u64> test_primes() {
  return {
      3,
      17,
      7681,                                  // 2^9 * 15 + 1
      65537,                                 // Fermat prime, 2^16 | q-1
      2'013'265'921,                         // 15 * 2^27 + 1, classic NTT
      find_ntt_prime(u64{1} << 40, 25),      // large + deep two-adicity
      next_prime((u64{1} << 61) - 100),      // just below 2^61
      next_prime((u64{1} << 62) - 5000),     // just below the 2^62 bound
  };
}

TEST(Montgomery, DomainRoundTrip) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q);
    EXPECT_EQ(m.from_mont(m.one()), 1u) << q;
    EXPECT_EQ(m.to_mont(0), 0u) << q;
    for (int i = 0; i < 200; ++i) {
      const u64 a = rng() % q;
      EXPECT_EQ(m.from_mont(m.to_mont(a)), a) << "q=" << q << " a=" << a;
    }
  }
}

TEST(Montgomery, MulAgreesWithReference) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q ^ 0xABCD);
    for (int i = 0; i < 500; ++i) {
      const u64 a = rng() % q, b = rng() % q;
      const u64 got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
      EXPECT_EQ(got, f.mul(a, b)) << "q=" << q << " a=" << a << " b=" << b;
    }
  }
}

TEST(Montgomery, AddSubNegAgreeWithReference) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q ^ 0x1234);
    for (int i = 0; i < 500; ++i) {
      const u64 a = rng() % q, b = rng() % q;
      const u64 am = m.to_mont(a), bm = m.to_mont(b);
      EXPECT_EQ(m.from_mont(m.add(am, bm)), f.add(a, b)) << q;
      EXPECT_EQ(m.from_mont(m.sub(am, bm)), f.sub(a, b)) << q;
      EXPECT_EQ(m.from_mont(m.neg(am)), f.neg(a)) << q;
    }
  }
}

TEST(Montgomery, PowAgreesWithReference) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q ^ 0x77);
    for (int i = 0; i < 50; ++i) {
      const u64 a = rng() % q;
      const u64 e = rng();
      EXPECT_EQ(m.from_mont(m.pow(m.to_mont(a), e)), f.pow(a, e))
          << "q=" << q << " a=" << a << " e=" << e;
    }
  }
}

TEST(Montgomery, InvAgreesWithReference) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q ^ 0x99);
    for (int i = 0; i < 50; ++i) {
      const u64 a = 1 + rng() % (q - 1);
      const u64 am = m.to_mont(a);
      EXPECT_EQ(m.from_mont(m.inv(am)), f.inv(a)) << "q=" << q << " a=" << a;
      EXPECT_EQ(m.mul(am, m.inv(am)), m.one()) << "q=" << q << " a=" << a;
    }
    EXPECT_THROW(m.inv(0), std::invalid_argument);
  }
}

TEST(Montgomery, BatchInvMatchesScalar) {
  for (u64 q : test_primes()) {
    if (q < 100) continue;
    PrimeField f(q);
    MontgomeryField m(f);
    std::mt19937_64 rng(q ^ 0x5A5A);
    std::vector<u64> xs;
    for (int i = 0; i < 64; ++i) xs.push_back(m.to_mont(1 + rng() % (q - 1)));
    const auto inv = m.batch_inv(xs);
    ASSERT_EQ(inv.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(inv[i], m.inv(xs[i])) << q;
    }
    EXPECT_THROW(m.batch_inv({m.one(), 0}), std::invalid_argument);
  }
}

TEST(Montgomery, VectorConversions) {
  PrimeField f(find_ntt_prime(1 << 20, 20));
  MontgomeryField m(f);
  std::mt19937_64 rng(42);
  std::vector<u64> xs(257);
  for (u64& x : xs) x = rng();  // arbitrary, unreduced
  const std::vector<u64> mont = m.to_mont_vec(xs);
  const std::vector<u64> back = m.from_mont_vec(mont);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(back[i], f.reduce(xs[i])) << i;
  }
  std::vector<u64> inplace(xs.begin(), xs.end());
  m.to_mont_inplace(inplace);
  EXPECT_EQ(inplace, mont);
  m.from_mont_inplace(inplace);
  EXPECT_EQ(inplace, back);
}

TEST(Montgomery, FromU64EmbedsIntegers) {
  for (u64 q : test_primes()) {
    PrimeField f(q);
    MontgomeryField m(f);
    for (u64 v : {u64{0}, u64{1}, u64{2}, q - 1, q, q + 1, ~u64{0} % q}) {
      EXPECT_EQ(m.from_mont(m.from_u64(v)), v % q) << "q=" << q;
    }
  }
}

TEST(Montgomery, RootOfUnityMatchesBase) {
  PrimeField f(7681);  // two-adicity 9
  MontgomeryField m(f);
  for (int k = 0; k <= f.two_adicity(); ++k) {
    EXPECT_EQ(m.from_mont(m.root_of_unity(k)), f.root_of_unity(k)) << k;
  }
}

// q = 2 has no Montgomery representation (gcd(R, q) != 1); the
// degenerate identity-domain mode must still satisfy the field laws.
TEST(Montgomery, DegenerateModulusTwo) {
  PrimeField f(2);
  MontgomeryField m(f);
  EXPECT_EQ(m.one(), 1u);
  EXPECT_EQ(m.to_mont(1), 1u);
  EXPECT_EQ(m.from_mont(1), 1u);
  EXPECT_EQ(m.mul(1, 1), 1u);
  EXPECT_EQ(m.mul(1, 0), 0u);
  EXPECT_EQ(m.add(1, 1), 0u);
  EXPECT_EQ(m.inv(1), 1u);
  EXPECT_EQ(m.pow(1, 5), 1u);
}

// Randomized ring laws directly in the Montgomery domain, mirroring
// the PrimeField axioms test.
class MontgomeryAxioms : public ::testing::TestWithParam<u64> {};

TEST_P(MontgomeryAxioms, RingLaws) {
  PrimeField f(GetParam());
  MontgomeryField m(f);
  std::mt19937_64 rng(GetParam());
  const u64 q = f.modulus();
  for (int i = 0; i < 50; ++i) {
    const u64 a = m.to_mont(rng() % q), b = m.to_mont(rng() % q),
              c = m.to_mont(rng() % q);
    EXPECT_EQ(m.add(a, b), m.add(b, a));
    EXPECT_EQ(m.mul(a, b), m.mul(b, a));
    EXPECT_EQ(m.add(m.add(a, b), c), m.add(a, m.add(b, c)));
    EXPECT_EQ(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
    EXPECT_EQ(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
    EXPECT_EQ(m.sub(a, b), m.add(a, m.neg(b)));
    EXPECT_EQ(m.add(a, m.zero()), a);
    EXPECT_EQ(m.mul(a, m.one()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, MontgomeryAxioms,
                         ::testing::Values(3, 17, 97, 7681, 65537,
                                           1'000'003, 2'013'265'921));

}  // namespace
}  // namespace camelot
