// Property tests for the AVX2 Montgomery backend: every lane-wide
// kernel must agree bit-for-bit with the scalar Montgomery pipeline
// on randomized inputs — including lengths that are not multiples of
// the 4-lane width, so the scalar tails are exercised — across
// several primes. When the process cannot run the AVX2 kernels (no
// CPU support, or CAMELOT_FORCE_SCALAR is set), the differential
// tests are vacuous and are skipped so the report stays honest; the
// dispatch tests still run and pin down the fallback behavior.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "field/field_cache.hpp"
#include "field/field_ops.hpp"
#include "field/montgomery_avx512.hpp"
#include "field/montgomery_simd.hpp"
#include "field/primes.hpp"
#include "poly/lagrange.hpp"
#include "poly/multipoint.hpp"
#include "poly/ntt.hpp"
#include "poly/poly.hpp"
#include "rs/gao.hpp"
#include "rs/reed_solomon.hpp"
#include "yates/yates.hpp"

namespace camelot {
namespace {

// Primes of assorted sizes (all NTT-friendly enough for the kernels
// each test uses). 3 and 5 stress the tiny-modulus corners.
std::vector<u64> test_primes() {
  return {3, 5, 97, find_ntt_prime(1u << 12, 8),
          find_ntt_prime(u64{1} << 40, 20), find_ntt_prime(u64{1} << 61, 8)};
}

std::vector<u64> random_domain_values(const MontgomeryField& m,
                                      std::size_t n, std::mt19937_64& rng) {
  std::vector<u64> out(n);
  for (u64& v : out) v = m.to_mont(rng() % m.modulus());
  return out;
}

TEST(SimdDispatch, ResolutionFollowsRuntimeSupport) {
  const PrimeField f(find_ntt_prime(1u << 12, 8));
  const FieldOps ops(f, FieldBackend::kMontgomeryAvx2);
  if (simd_runtime_enabled()) {
    EXPECT_EQ(ops.backend(), FieldBackend::kMontgomeryAvx2);
    EXPECT_TRUE(ops.simd());
  } else {
    EXPECT_EQ(ops.backend(), FieldBackend::kMontgomery);
    EXPECT_FALSE(ops.simd());
  }
  // An AVX-512 request steps down the ladder one rung at a time.
  const FieldOps ops512(f, FieldBackend::kMontgomeryAvx512);
  if (simd512_runtime_enabled()) {
    EXPECT_EQ(ops512.backend(), FieldBackend::kMontgomeryAvx512);
    EXPECT_TRUE(ops512.simd());
  } else if (simd_runtime_enabled()) {
    EXPECT_EQ(ops512.backend(), FieldBackend::kMontgomeryAvx2);
  } else {
    EXPECT_EQ(ops512.backend(), FieldBackend::kMontgomery);
  }
  // best_backend() names the top of the ladder the host can run.
  if (simd512_runtime_enabled()) {
    EXPECT_EQ(best_backend(), FieldBackend::kMontgomeryAvx512);
  } else if (simd_runtime_enabled()) {
    EXPECT_EQ(best_backend(), FieldBackend::kMontgomeryAvx2);
  } else {
    EXPECT_EQ(best_backend(), FieldBackend::kMontgomery);
  }
  // Explicit scalar requests are never upgraded.
  EXPECT_EQ(FieldOps(f, FieldBackend::kMontgomery).backend(),
            FieldBackend::kMontgomery);
  EXPECT_EQ(FieldOps(f, FieldBackend::kPrimeDivision).backend(),
            FieldBackend::kPrimeDivision);
}

TEST(SimdDispatch, WidePrimeResolvesScalar) {
  // q >= 2^31: 4xu64 AVX2 lanes cannot beat scalar mulx, so dispatch
  // keeps wide primes off the AVX2 pipeline. AVX-512 has a wide
  // (vpmullq REDC-64) kernel set, so a 512 request keeps its lanes.
  const PrimeField f(find_ntt_prime(u64{1} << 40, 20));
  EXPECT_EQ(FieldOps(f, FieldBackend::kMontgomeryAvx2).backend(),
            FieldBackend::kMontgomery);
  if (simd512_runtime_enabled()) {
    EXPECT_EQ(FieldOps(f, FieldBackend::kMontgomeryAvx512).backend(),
              FieldBackend::kMontgomeryAvx512);
  }
}

TEST(SimdDispatch, TrivialModulusAlwaysResolvesScalar) {
  // q == 2 has no Montgomery representation; the SIMD kernels do not
  // implement the identity-domain mode, so dispatch must refuse it.
  const FieldOps ops(PrimeField(2), FieldBackend::kMontgomeryAvx2);
  EXPECT_EQ(ops.backend(), FieldBackend::kMontgomery);
  EXPECT_EQ(FieldOps(PrimeField(2), FieldBackend::kMontgomeryAvx512).backend(),
            FieldBackend::kMontgomery);
}

TEST(SimdBackend, ElementwiseKernelsMatchScalar) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xA2C2);
  for (u64 q : test_primes()) {
    const MontgomeryField m{PrimeField(q)};
    const MontgomeryAvx2Field fs(m);
    // Lengths around the lane width exercise every tail shape.
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}, std::size_t{7},
                          std::size_t{8}, std::size_t{13}, std::size_t{100},
                          std::size_t{1001}}) {
      const std::vector<u64> a = random_domain_values(m, n, rng);
      const std::vector<u64> b = random_domain_values(m, n, rng);
      const u64 s = m.to_mont(rng() % q);

      std::vector<u64> got(n), want(n);
      fs.mul_vec(a.data(), b.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = m.mul(a[i], b[i]);
      EXPECT_EQ(got, want) << "mul_vec q=" << q << " n=" << n;

      fs.scale_vec(a.data(), s, got.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = m.mul(a[i], s);
      EXPECT_EQ(got, want) << "scale_vec q=" << q << " n=" << n;

      got = a;
      want = a;
      fs.addmul_inplace(got.data(), s, b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        want[i] = m.add(want[i], m.mul(s, b[i]));
      }
      EXPECT_EQ(got, want) << "addmul q=" << q << " n=" << n;

      got = a;
      want = a;
      fs.submul_inplace(got.data(), s, b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        want[i] = m.sub(want[i], m.mul(s, b[i]));
      }
      EXPECT_EQ(got, want) << "submul q=" << q << " n=" << n;

      got = a;
      want = a;
      fs.add_inplace(got.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = m.add(want[i], b[i]);
      EXPECT_EQ(got, want) << "add_inplace q=" << q << " n=" << n;

      fs.sub_from_scalar(s, a.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = m.sub(s, a[i]);
      EXPECT_EQ(got, want) << "sub_from_scalar q=" << q << " n=" << n;

      u64 acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc = m.add(acc, m.mul(a[i], b[i]));
      EXPECT_EQ(fs.dot(a.data(), b.data(), n), acc)
          << "dot q=" << q << " n=" << n;
    }
  }
}

TEST(SimdBackend, NttMatchesScalarTabledAndUntabled) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xB3D1);
  for (u64 q : {find_ntt_prime(1u << 12, 14), find_ntt_prime(u64{1} << 40, 20)}) {
    const MontgomeryField m{PrimeField(q)};
    const MontgomeryAvx2Field fs(m);
    const NttTables tables(m, 1u << 12);
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}, std::size_t{64}, std::size_t{4096}}) {
      for (bool inverse : {false, true}) {
        const std::vector<u64> base = random_domain_values(m, n, rng);
        std::vector<u64> scalar = base, simd = base;
        ntt_inplace(scalar, inverse, m);
        ntt_inplace(simd, inverse, fs);
        EXPECT_EQ(simd, scalar) << "untabled q=" << q << " n=" << n
                                << " inv=" << inverse;
        scalar = base;
        simd = base;
        ntt_inplace(scalar, inverse, m, tables);
        ntt_inplace(simd, inverse, fs, tables);
        EXPECT_EQ(simd, scalar) << "tabled q=" << q << " n=" << n
                                << " inv=" << inverse;
      }
    }
    // Convolutions of tail-heavy (non-power-of-two) lengths.
    for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{1, 1},
                          {5, 3},
                          {513, 511},
                          {1000, 37}}) {
      const std::vector<u64> a = random_domain_values(m, na, rng);
      const std::vector<u64> b = random_domain_values(m, nb, rng);
      EXPECT_EQ(ntt_convolve(a, b, fs), ntt_convolve(a, b, m));
      EXPECT_EQ(ntt_convolve(a, b, fs, tables), ntt_convolve(a, b, m, tables));
    }
  }
}

TEST(SimdBackend, PolyKernelsMatchScalar) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xC4E3);
  for (u64 q : test_primes()) {
    const MontgomeryField m{PrimeField(q)};
    const MontgomeryAvx2Field fs(m);
    for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{1, 1},
                          {7, 5},
                          {40, 33},
                          {200, 100}}) {
      const Poly a{random_domain_values(m, na, rng)};
      Poly b{random_domain_values(m, nb, rng)};
      b.c.back() = m.one();  // divisor needs an invertible leading coeff
      EXPECT_TRUE(poly_equal(poly_mul_schoolbook(a, b, fs),
                             poly_mul_schoolbook(a, b, m)));
      EXPECT_TRUE(poly_equal(poly_mul_karatsuba(a, b, fs),
                             poly_mul_karatsuba(a, b, m)));
      EXPECT_TRUE(poly_equal(poly_mul(a, b, fs), poly_mul(a, b, m)));
      if (!poly_equal(b, Poly::zero())) {
        Poly qs, rs, qv, rv;
        poly_divrem(a, b, m, &qs, &rs);
        poly_divrem(a, b, fs, &qv, &rv);
        EXPECT_TRUE(poly_equal(qv, qs));
        EXPECT_TRUE(poly_equal(rv, rs));
      }
    }
  }
}

TEST(SimdBackend, MultipointTreeMatchesScalarBackend) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xD5F4);
  FieldCache cache;
  const u64 q = find_ntt_prime(1u << 14, 14);
  const PrimeField f(q);
  for (std::size_t n : {std::size_t{5}, std::size_t{13}, std::size_t{64},
                        std::size_t{1000}}) {
    const FieldOps scalar_ops = cache.ops(q, 2 * n, FieldBackend::kMontgomery);
    const FieldOps simd_ops =
        cache.ops(q, 2 * n, FieldBackend::kMontgomeryAvx2);
    std::vector<u64> pts(n);
    for (std::size_t i = 0; i < n; ++i) pts[i] = i + 1;
    const SubproductTree ts(pts, scalar_ops);
    const SubproductTree tv(pts, simd_ops);
    // Identical node polynomials (Montgomery domain, bit-for-bit).
    EXPECT_TRUE(poly_equal(tv.root_mont(), ts.root_mont()));

    Poly p;
    p.c.resize(n);
    for (u64& v : p.c) v = rng() % q;
    EXPECT_EQ(tv.evaluate(p, f), ts.evaluate(p, f)) << "evaluate n=" << n;

    std::vector<u64> ys(n);
    for (u64& v : ys) v = rng() % q;
    EXPECT_TRUE(
        poly_equal(tv.interpolate(ys, f), ts.interpolate(ys, f)))
        << "interpolate n=" << n;
  }
}

TEST(SimdBackend, GaoDecodeMatchesScalarBackend) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xE605);
  FieldCache cache;
  // Narrow primes: wide ones resolve to the scalar backend anyway.
  for (u64 q : {find_ntt_prime(1u << 12, 12), find_ntt_prime(1u << 30, 16)}) {
    for (auto [d, e] : {std::pair<std::size_t, std::size_t>{10, 31},
                        {100, 201}}) {
      const FieldOps scalar_ops =
          cache.ops(q, 2 * e, FieldBackend::kMontgomery);
      const FieldOps simd_ops =
          cache.ops(q, 2 * e, FieldBackend::kMontgomeryAvx2);
      const ReedSolomonCode cs(scalar_ops, d, e);
      const ReedSolomonCode cv(simd_ops, d, e);
      Poly msg;
      msg.c.resize(d + 1);
      for (u64& v : msg.c) v = rng() % q;
      std::vector<u64> word = cs.encode(msg);
      EXPECT_EQ(cv.encode(msg), word);
      // Corrupt up to the unique decoding radius.
      const std::size_t radius = cs.decoding_radius();
      for (std::size_t errs : {std::size_t{0}, radius / 2, radius}) {
        std::vector<u64> received = word;
        for (std::size_t t = 0; t < errs; ++t) {
          received[(t * 7919) % e] = rng() % q;
        }
        const GaoResult rs = gao_decode(cs, received);
        const GaoResult rv = gao_decode(cv, received);
        EXPECT_EQ(rv.status, rs.status);
        EXPECT_TRUE(poly_equal(rv.message, rs.message));
        EXPECT_EQ(rv.error_locations, rs.error_locations);
        EXPECT_EQ(rv.corrected, rs.corrected);
      }
    }
  }
}

TEST(SimdBackend, YatesAndLagrangeMatchScalarBackend) {
  if (!simd_runtime_enabled()) GTEST_SKIP() << "AVX2 unavailable or forced off";
  std::mt19937_64 rng(0xF716);
  const u64 q = find_ntt_prime(1u << 12, 8);
  const PrimeField f(q);
  const MontgomeryField m(f);
  const MontgomeryAvx2Field fs(m);
  // 3x2 base, k = 5: suffix pushes of every length down to 1.
  const std::size_t t_dim = 3, s_dim = 2;
  std::vector<u64> base = random_domain_values(m, t_dim * s_dim, rng);
  base[1] = m.one();  // exercise the unit-weight (add_inplace) path
  base[3] = 0;        // and the skip path
  const unsigned k = 5;
  std::vector<u64> x = random_domain_values(m, std::size_t{1} << k, rng);
  EXPECT_EQ(yates_apply(fs, base, t_dim, s_dim, x, k),
            yates_apply(m, base, t_dim, s_dim, x, k));

  const FieldOps scalar_ops(f, FieldBackend::kMontgomery);
  const FieldOps simd_ops(f, FieldBackend::kMontgomeryAvx2);
  for (std::size_t count : {std::size_t{1}, std::size_t{6}, std::size_t{49}}) {
    const ConsecutiveLagrange ls(1, count, scalar_ops);
    const ConsecutiveLagrange lv(1, count, simd_ops);
    std::vector<u64> values(count);
    for (u64& v : values) v = rng() % q;
    // Random points, plus hits on the first/last node.
    for (u64 x0 : {rng() % q, u64{1}, count}) {
      EXPECT_EQ(lv.basis_mont(x0), ls.basis_mont(x0)) << "count=" << count;
      EXPECT_EQ(lv.basis(x0), ls.basis(x0));
      EXPECT_EQ(lv.eval(values, x0), ls.eval(values, x0));
    }
  }
}

TEST(Avx512Backend, ElementwiseKernelsMatchScalar) {
  if (!simd512_runtime_enabled()) {
    GTEST_SKIP() << "AVX-512 unavailable or forced off";
  }
  std::mt19937_64 rng(0x512A);
  for (u64 q : test_primes()) {
    const MontgomeryField m{PrimeField(q)};
    // Both dispatch flavors: the IFMA REDC-52 kernels where the host
    // and prime allow them, and the generic F/DQ kernels always.
    for (bool allow_ifma : {true, false}) {
      const MontgomeryAvx512Field fs(m, allow_ifma);
      // Lengths around the 8-lane width exercise every tail shape.
      for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{7},
                            std::size_t{8}, std::size_t{9}, std::size_t{15},
                            std::size_t{16}, std::size_t{100},
                            std::size_t{1001}}) {
        const std::vector<u64> a = random_domain_values(m, n, rng);
        const std::vector<u64> b = random_domain_values(m, n, rng);
        const u64 s = m.to_mont(rng() % q);

        std::vector<u64> got(n), want(n);
        fs.mul_vec(a.data(), b.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) want[i] = m.mul(a[i], b[i]);
        EXPECT_EQ(got, want) << "mul_vec q=" << q << " n=" << n
                             << " ifma=" << fs.ifma();

        fs.scale_vec(a.data(), s, got.data(), n);
        for (std::size_t i = 0; i < n; ++i) want[i] = m.mul(a[i], s);
        EXPECT_EQ(got, want) << "scale_vec q=" << q << " n=" << n;

        got = a;
        want = a;
        fs.addmul_inplace(got.data(), s, b.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = m.add(want[i], m.mul(s, b[i]));
        }
        EXPECT_EQ(got, want) << "addmul q=" << q << " n=" << n;

        got = a;
        want = a;
        fs.submul_inplace(got.data(), s, b.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = m.sub(want[i], m.mul(s, b[i]));
        }
        EXPECT_EQ(got, want) << "submul q=" << q << " n=" << n;

        got = a;
        want = a;
        fs.add_inplace(got.data(), b.data(), n);
        for (std::size_t i = 0; i < n; ++i) want[i] = m.add(want[i], b[i]);
        EXPECT_EQ(got, want) << "add_inplace q=" << q << " n=" << n;

        fs.sub_from_scalar(s, a.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) want[i] = m.sub(s, a[i]);
        EXPECT_EQ(got, want) << "sub_from_scalar q=" << q << " n=" << n;

        u64 acc = 0;
        for (std::size_t i = 0; i < n; ++i) {
          acc = m.add(acc, m.mul(a[i], b[i]));
        }
        EXPECT_EQ(fs.dot(a.data(), b.data(), n), acc)
            << "dot q=" << q << " n=" << n;
      }
    }
  }
}

TEST(Avx512Backend, NttMatchesScalarTabledAndUntabled) {
  if (!simd512_runtime_enabled()) {
    GTEST_SKIP() << "AVX-512 unavailable or forced off";
  }
  std::mt19937_64 rng(0x512B);
  for (u64 q :
       {find_ntt_prime(1u << 12, 14), find_ntt_prime(u64{1} << 40, 20)}) {
    const MontgomeryField m{PrimeField(q)};
    const MontgomeryAvx512Field fs(m);
    const NttTables tables(m, 1u << 12);
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                          std::size_t{16}, std::size_t{64},
                          std::size_t{4096}}) {
      for (bool inverse : {false, true}) {
        const std::vector<u64> base = random_domain_values(m, n, rng);
        std::vector<u64> scalar = base, simd = base;
        ntt_inplace(scalar, inverse, m);
        ntt_inplace(simd, inverse, fs);
        EXPECT_EQ(simd, scalar)
            << "untabled q=" << q << " n=" << n << " inv=" << inverse;
        scalar = base;
        simd = base;
        ntt_inplace(scalar, inverse, m, tables);
        ntt_inplace(simd, inverse, fs, tables);
        EXPECT_EQ(simd, scalar)
            << "tabled q=" << q << " n=" << n << " inv=" << inverse;
      }
    }
    for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{1, 1},
                          {5, 3},
                          {513, 511},
                          {1000, 37}}) {
      const std::vector<u64> a = random_domain_values(m, na, rng);
      const std::vector<u64> b = random_domain_values(m, nb, rng);
      EXPECT_EQ(ntt_convolve(a, b, fs), ntt_convolve(a, b, m));
      EXPECT_EQ(ntt_convolve(a, b, fs, tables), ntt_convolve(a, b, m, tables));
    }
  }
}

TEST(Avx512Backend, FourWayBackendBitIdentity) {
  // The full ladder — division, scalar Montgomery, AVX2, AVX-512 —
  // must produce identical encode/decode words through the RS
  // pipeline; rungs the host cannot run resolve downward and the
  // equality stays meaningful (it degenerates gracefully rather than
  // skipping outright).
  std::mt19937_64 rng(0x512C);
  FieldCache cache;
  const u64 q = find_ntt_prime(1u << 12, 12);
  const std::size_t d = 40, e = 101;
  const FieldBackend backends[] = {
      FieldBackend::kPrimeDivision, FieldBackend::kMontgomery,
      FieldBackend::kMontgomeryAvx2, FieldBackend::kMontgomeryAvx512};
  Poly msg;
  msg.c.resize(d + 1);
  for (u64& v : msg.c) v = rng() % q;
  std::vector<u64> ref_word;
  for (const FieldBackend b : backends) {
    const FieldOps ops = cache.ops(q, 2 * e, b);
    const ReedSolomonCode code(ops, d, e);
    std::vector<u64> word = code.encode(msg);
    if (ref_word.empty()) {
      ref_word = word;
    } else {
      EXPECT_EQ(word, ref_word) << "backend=" << static_cast<int>(b);
    }
    for (std::size_t t = 0; t < code.decoding_radius(); ++t) {
      word[(t * 7919) % e] = rng() % q;
    }
    const GaoResult r = gao_decode(code, word);
    EXPECT_EQ(r.status, DecodeStatus::kOk)
        << "backend=" << static_cast<int>(b);
    EXPECT_TRUE(poly_equal(r.message, msg))
        << "backend=" << static_cast<int>(b);
  }
}

TEST(Avx512Backend, PipelineSeamsMatchAvx2AndScalar) {
  if (!simd512_runtime_enabled()) {
    GTEST_SKIP() << "AVX-512 unavailable or forced off";
  }
  std::mt19937_64 rng(0x512D);
  FieldCache cache;
  const u64 q = find_ntt_prime(1u << 14, 14);
  const PrimeField f(q);
  const MontgomeryField m(f);
  const MontgomeryAvx512Field fs(m);
  // Poly kernels through the instantiated AVX-512 backend.
  for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{7, 5},
                        {40, 33},
                        {200, 100}}) {
    const Poly a{random_domain_values(m, na, rng)};
    Poly b{random_domain_values(m, nb, rng)};
    b.c.back() = m.one();
    EXPECT_TRUE(poly_equal(poly_mul(a, b, fs), poly_mul(a, b, m)));
    Poly qs, rs, qv, rv;
    poly_divrem(a, b, m, &qs, &rs);
    poly_divrem(a, b, fs, &qv, &rv);
    EXPECT_TRUE(poly_equal(qv, qs));
    EXPECT_TRUE(poly_equal(rv, rs));
  }
  // Multipoint tree built from kMontgomeryAvx512 ops.
  const std::size_t n = 1000;
  const FieldOps scalar_ops = cache.ops(q, 2 * n, FieldBackend::kMontgomery);
  const FieldOps simd_ops =
      cache.ops(q, 2 * n, FieldBackend::kMontgomeryAvx512);
  std::vector<u64> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = i + 1;
  const SubproductTree ts(pts, scalar_ops);
  const SubproductTree tv(pts, simd_ops);
  EXPECT_TRUE(poly_equal(tv.root_mont(), ts.root_mont()));
  Poly p;
  p.c.resize(n);
  for (u64& v : p.c) v = rng() % q;
  EXPECT_EQ(tv.evaluate(p, f), ts.evaluate(p, f));
  std::vector<u64> ys(n);
  for (u64& v : ys) v = rng() % q;
  EXPECT_TRUE(poly_equal(tv.interpolate(ys, f), ts.interpolate(ys, f)));
  // Yates and Lagrange through the same seams the evaluators use.
  std::vector<u64> base = random_domain_values(m, 6, rng);
  base[1] = m.one();
  base[3] = 0;
  std::vector<u64> x = random_domain_values(m, std::size_t{1} << 5, rng);
  EXPECT_EQ(yates_apply(fs, base, 3, 2, x, 5),
            yates_apply(m, base, 3, 2, x, 5));
  const ConsecutiveLagrange ls(1, 49, scalar_ops);
  const ConsecutiveLagrange lv(1, 49, simd_ops);
  std::vector<u64> values(49);
  for (u64& v : values) v = rng() % q;
  for (u64 x0 : {rng() % q, u64{1}, u64{49}}) {
    EXPECT_EQ(lv.basis_mont(x0), ls.basis_mont(x0));
    EXPECT_EQ(lv.eval(values, x0), ls.eval(values, x0));
  }
}

}  // namespace
}  // namespace camelot
