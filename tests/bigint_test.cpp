#include "field/bigint.hpp"

#include <gtest/gtest.h>

#include <random>

namespace camelot {
namespace {

TEST(BigInt, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.negative());
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ((-z).to_string(), "0");
}

TEST(BigInt, SmallArithmetic) {
  BigInt a(123), b(-45);
  EXPECT_EQ((a + b).to_i64(), 78);
  EXPECT_EQ((a - b).to_i64(), 168);
  EXPECT_EQ((a * b).to_i64(), -5535);
  EXPECT_EQ((b * b).to_i64(), 2025);
  EXPECT_EQ((a + (-a)).to_i64(), 0);
}

TEST(BigInt, Int64Boundaries) {
  BigInt mn(INT64_MIN), mx(INT64_MAX);
  EXPECT_EQ(mn.to_i64(), INT64_MIN);
  EXPECT_EQ(mx.to_i64(), INT64_MAX);
  EXPECT_EQ(mn.to_string(), "-9223372036854775808");
  EXPECT_EQ(mx.to_string(), "9223372036854775807");
  EXPECT_THROW((mx + BigInt(1)).to_i64(), std::overflow_error);
}

TEST(BigInt, CarryPropagation) {
  BigInt a = BigInt::from_u64(~u64{0});
  BigInt b = a + BigInt(1);
  EXPECT_EQ(b.to_string(), "18446744073709551616");  // 2^64
  EXPECT_EQ((b - BigInt(1)).to_u64(), ~u64{0});
  EXPECT_EQ(b.bit_length(), 65u);
}

TEST(BigInt, PowerOfTwo) {
  EXPECT_EQ(BigInt::power_of_two(0).to_u64(), 1u);
  EXPECT_EQ(BigInt::power_of_two(10).to_u64(), 1024u);
  EXPECT_EQ(BigInt::power_of_two(100).bit_length(), 101u);
  EXPECT_EQ(BigInt::power_of_two(128).to_string(),
            "340282366920938463463374607431768211456");
}

TEST(BigInt, MultiplicationLarge) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  BigInt a = BigInt::from_u64(~u64{0});
  BigInt sq = a * a;
  BigInt expect = BigInt::power_of_two(128) - BigInt::power_of_two(65) +
                  BigInt(1);
  EXPECT_EQ(sq, expect);
  EXPECT_EQ(sq.to_string(), "340282366920938463426481119284349108225");
}

TEST(BigInt, FromString) {
  EXPECT_EQ(BigInt::from_string("0").to_i64(), 0);
  EXPECT_EQ(BigInt::from_string("-12345").to_i64(), -12345);
  BigInt big = BigInt::from_string("340282366920938463463374607431768211456");
  EXPECT_EQ(big, BigInt::power_of_two(128));
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
}

TEST(BigInt, ModU64) {
  BigInt big = BigInt::from_string("123456789012345678901234567890");
  // Divisibility facts checkable by hand: value = 2 * 3^2 * 5 * ...
  EXPECT_EQ(big.mod_u64(2), 0u);
  EXPECT_EQ(big.mod_u64(3), 0u);
  EXPECT_EQ(big.mod_u64(10), 0u);
  // x mod m agrees with the remainder from divmod.
  u64 r1 = big.mod_u64(1'000'000'007);
  u64 rem = 0;
  BigInt q = big.divmod_u64(1'000'000'007, &rem);
  EXPECT_EQ(r1, rem);
  EXPECT_EQ(q.mul_u64(1'000'000'007) + BigInt::from_u64(rem), big);
}

TEST(BigInt, DivmodRoundTrip) {
  std::mt19937_64 rng(11);
  BigInt x = BigInt::from_u64(rng());
  for (int i = 0; i < 5; ++i) x = x * BigInt::from_u64(rng() | 1);
  for (u64 d : {u64{3}, u64{97}, u64{1'000'003}, (u64{1} << 61) - 1}) {
    u64 rem = 0;
    BigInt q = x.divmod_u64(d, &rem);
    EXPECT_LT(rem, d);
    EXPECT_EQ(q.mul_u64(d) + BigInt::from_u64(rem), x);
  }
}

TEST(BigInt, PowU32) {
  EXPECT_EQ(BigInt(3).pow_u32(0).to_i64(), 1);
  EXPECT_EQ(BigInt(3).pow_u32(5).to_i64(), 243);
  EXPECT_EQ(BigInt(2).pow_u32(100), BigInt::power_of_two(100));
  EXPECT_EQ(BigInt(-2).pow_u32(3).to_i64(), -8);
  EXPECT_EQ(BigInt(-2).pow_u32(4).to_i64(), 16);
  EXPECT_EQ(BigInt(10).pow_u32(30).to_string(),
            "1000000000000000000000000000000");
}

TEST(BigInt, Comparisons) {
  BigInt a(-5), b(3), c = BigInt::power_of_two(70);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(-c, a);
  EXPECT_LE(a, a);
  EXPECT_GT(c, b);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
}

TEST(BigInt, StringRoundTripRandom) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20; ++i) {
    BigInt x = BigInt::from_u64(rng());
    for (int j = 0; j < i % 4; ++j) x = x * BigInt::from_u64(rng());
    if (i % 2 == 1) x = -x;
    EXPECT_EQ(BigInt::from_string(x.to_string()), x);
  }
}

TEST(BigInt, AdditionAssociativityRandom) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 50; ++i) {
    BigInt a(static_cast<i64>(rng())), b(static_cast<i64>(rng())),
        c(static_cast<i64>(rng()));
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, -(b - a));
  }
}

}  // namespace
}  // namespace camelot
