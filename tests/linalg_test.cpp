#include "linalg/matmul.hpp"
#include "linalg/tensor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, const PrimeField& f,
                     std::mt19937_64& rng) {
  Matrix m(r, c);
  for (u64& v : m.data()) v = rng() % f.modulus();
  return m;
}

TEST(Matrix, PadAndTranspose) {
  PrimeField f(17);
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(1, 2) = 5;
  Matrix p = m.padded(4, 4);
  EXPECT_EQ(p.at(0, 0), 1u);
  EXPECT_EQ(p.at(1, 2), 5u);
  EXPECT_EQ(p.at(3, 3), 0u);
  EXPECT_THROW(m.padded(1, 3), std::invalid_argument);
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 5u);
}

TEST(Matrix, ElementwiseOps) {
  PrimeField f(7);
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 3;
  a.at(1, 1) = 5;
  b.at(0, 0) = 6;
  b.at(1, 1) = 4;
  Matrix s = matrix_add(a, b, f);
  EXPECT_EQ(s.at(0, 0), 2u);  // 9 mod 7
  Matrix h = matrix_hadamard(a, b, f);
  EXPECT_EQ(h.at(0, 0), 4u);  // 18 mod 7
  EXPECT_EQ(h.at(0, 1), 0u);
  EXPECT_EQ(matrix_sum(s, f), f.add(2, 2));
  EXPECT_EQ(matrix_dot(a, b, f), f.add(f.mul(3, 6), f.mul(5, 4)));
  Matrix wrong(3, 2);
  EXPECT_THROW(matrix_add(a, wrong, f), std::invalid_argument);
}

TEST(Matmul, TinyKnownProduct) {
  PrimeField f(101);
  Matrix a(2, 2), b(2, 2);
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c = matmul_classical(a, b, f);
  EXPECT_EQ(c.at(0, 0), 19u);
  EXPECT_EQ(c.at(0, 1), 22u);
  EXPECT_EQ(c.at(1, 0), 43u);
  EXPECT_EQ(c.at(1, 1), 50u);
}

TEST(Matmul, RectangularAndConformability) {
  PrimeField f(97);
  std::mt19937_64 rng(1);
  Matrix a = random_matrix(3, 5, f, rng);
  Matrix b = random_matrix(5, 2, f, rng);
  Matrix c = matmul_classical(a, b, f);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_THROW(matmul_classical(b, a, f), std::invalid_argument);
}

TEST(Matmul, LargeModulusPath) {
  // Modulus above 2^32 exercises the per-term reduction kernel.
  PrimeField f(next_prime((u64{1} << 61) - 50));
  std::mt19937_64 rng(2);
  Matrix a = random_matrix(4, 4, f, rng), b = random_matrix(4, 4, f, rng);
  Matrix c = matmul_classical(a, b, f);
  // Spot-check one entry against direct accumulation.
  u64 acc = 0;
  for (int t = 0; t < 4; ++t) {
    acc = f.add(acc, f.mul(a.at(2, t), b.at(t, 3)));
  }
  EXPECT_EQ(c.at(2, 3), acc);
}

TEST(Matmul, WideModulusShoupMatchesDivisionReference) {
  // The q >= 2^32 kernel now runs Shoup products against per-entry
  // precomputed quotients; every output word must equal the division
  // reference exactly, across several wide primes and shapes.
  std::mt19937_64 rng(3);
  for (u64 q : {(u64{1} << 32) + 15, next_prime(u64{1} << 45),
                next_prime((u64{1} << 61) - 50)}) {
    PrimeField f(q);
    for (auto [n, m, l] : {std::tuple<int, int, int>{1, 1, 1},
                           {3, 5, 2},
                           {8, 8, 8},
                           {17, 9, 13}}) {
      Matrix a = random_matrix(n, m, f, rng), b = random_matrix(m, l, f, rng);
      Matrix c = matmul_classical(a, b, f);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < l; ++j) {
          u64 acc = 0;
          for (int t = 0; t < m; ++t) {
            acc = f.add(acc,
                        static_cast<u64>(static_cast<u128>(a.at(i, t)) *
                                         b.at(t, j) % q));
          }
          EXPECT_EQ(c.at(i, j), acc) << "q=" << q << " (" << i << "," << j
                                     << ")";
        }
      }
    }
  }
}

class StrassenSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StrassenSizes, MatchesClassical) {
  PrimeField f(find_ntt_prime(1 << 20, 8));
  std::mt19937_64 rng(GetParam());
  const std::size_t n = GetParam();
  Matrix a = random_matrix(n, n, f, rng), b = random_matrix(n, n, f, rng);
  Matrix fast = matmul_strassen(a, b, f, /*cutoff=*/8);
  Matrix slow = matmul_classical(a, b, f);
  EXPECT_EQ(fast, slow) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrassenSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 16, 17, 31, 32,
                                           45, 64));

TEST(Matmul, AssociativityProperty) {
  PrimeField f(7681);
  std::mt19937_64 rng(3);
  Matrix a = random_matrix(6, 6, f, rng), b = random_matrix(6, 6, f, rng),
         c = random_matrix(6, 6, f, rng);
  Matrix ab_c = matmul(matmul(a, b, f), c, f);
  Matrix a_bc = matmul(a, matmul(b, c, f), f);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(Tensor, NaiveDecompositionVerifies) {
  for (std::size_t n0 : {1u, 2u, 3u}) {
    TrilinearDecomposition dec = naive_decomposition(n0);
    EXPECT_EQ(dec.rank, n0 * n0 * n0);
    EXPECT_TRUE(dec.verify()) << "n0=" << n0;
  }
}

TEST(Tensor, StrassenDecompositionVerifies) {
  TrilinearDecomposition dec = strassen_decomposition();
  EXPECT_EQ(dec.n0, 2u);
  EXPECT_EQ(dec.rank, 7u);
  EXPECT_TRUE(dec.verify());
}

TEST(Tensor, CorruptedDecompositionFailsVerify) {
  TrilinearDecomposition dec = strassen_decomposition();
  dec.alpha[3] += 1;
  EXPECT_FALSE(dec.verify());
}

TEST(Tensor, PowerCoefficientFactorizes) {
  TrilinearDecomposition dec = strassen_decomposition();
  PrimeField f(7681);
  // t=2: alpha_{de}(r) = alpha_{d1e1}(r1) * alpha_{d2e2}(r2).
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    u64 d = rng() % 4, e = rng() % 4, r = rng() % 49;
    u64 direct = dec.alpha_power(d, e, r, 2, f);
    u64 a1 = dec.alpha_power(d / 2, e / 2, r / 7, 1, f);
    u64 a2 = dec.alpha_power(d % 2, e % 2, r % 7, 1, f);
    EXPECT_EQ(direct, f.mul(a1, a2));
  }
}

class DecompositionMatmul
    : public ::testing::TestWithParam<std::tuple<bool, unsigned>> {};

TEST_P(DecompositionMatmul, KroneckerPowerMultiplies) {
  const bool use_strassen = std::get<0>(GetParam());
  const unsigned t = std::get<1>(GetParam());
  TrilinearDecomposition dec =
      use_strassen ? strassen_decomposition() : naive_decomposition(2);
  PrimeField f(find_ntt_prime(1 << 16, 8));
  std::mt19937_64 rng(t + (use_strassen ? 100 : 0));
  const std::size_t n = ipow(2, t);
  Matrix a = random_matrix(n, n, f, rng), b = random_matrix(n, n, f, rng);
  Matrix via_tensor = matmul_via_decomposition(a, b, dec, t, f);
  Matrix direct = matmul_classical(a, b, f);
  EXPECT_EQ(via_tensor, direct)
      << (use_strassen ? "strassen" : "naive") << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DecompositionMatmul,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 2u, 3u, 4u)));

TEST(Tensor, DecompositionMatmulRejectsWrongSize) {
  TrilinearDecomposition dec = strassen_decomposition();
  PrimeField f(97);
  Matrix a(3, 3), b(3, 3);
  EXPECT_THROW(matmul_via_decomposition(a, b, dec, 2, f),
               std::invalid_argument);
}

}  // namespace
}  // namespace camelot
