// End-to-end tests of the Camelot framework (§1.3 pipeline) against a
// transparent toy problem whose proof polynomial is fully known.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/cluster.hpp"
#include "core/prime_plan.hpp"
#include "core/verifier.hpp"
#include "field/primes.hpp"

namespace camelot {
namespace {

// Toy problem: the common input is a vector v of small integers; the
// proof polynomial is P(x) = sum_j v_j x^j and the answer is
// P(1) = sum_j v_j. Transparent enough to check every framework stage.
class ToyProblem : public CamelotProblem {
 public:
  explicit ToyProblem(std::vector<u64> input) : input_(std::move(input)) {}

  std::string name() const override { return "toy-sum"; }

  ProofSpec spec() const override {
    ProofSpec s;
    s.degree_bound = input_.size() - 1;
    s.min_modulus = 257;
    s.answer_count = 1;
    u64 sum = std::accumulate(input_.begin(), input_.end(), u64{0});
    s.answer_bound = BigInt::from_u64(sum);
    return s;
  }

  std::unique_ptr<Evaluator> make_evaluator(
      const FieldOps& f) const override {
    class Ev : public Evaluator {
     public:
      Ev(const FieldOps& f, const std::vector<u64>& v)
          : Evaluator(f), v_(v) {}
      u64 eval(u64 x0) override {
        u64 acc = 0;
        for (std::size_t i = v_.size(); i-- > 0;) {
          acc = field_.add(field_.mul(acc, x0), field_.reduce(v_[i]));
        }
        return acc;
      }

     private:
      const std::vector<u64>& v_;
    };
    return std::make_unique<Ev>(f, input_);
  }

  std::vector<u64> recover(const Poly& proof,
                           const PrimeField& f) const override {
    return {poly_eval(proof, 1, f)};
  }

 private:
  std::vector<u64> input_;
};

std::vector<u64> toy_input(std::size_t n, u64 seed) {
  std::mt19937_64 rng(seed);
  std::vector<u64> v(n);
  for (u64& x : v) x = rng() % 100;
  return v;
}

TEST(PrimePlan, RespectsConstraints) {
  ProofSpec spec;
  spec.degree_bound = 100;
  spec.min_modulus = 5000;
  spec.answer_bound = BigInt::power_of_two(80);
  PrimePlan plan = plan_primes(spec, 2.0);
  EXPECT_EQ(plan.code_length, 202u);
  EXPECT_EQ(plan.decoding_radius, 50u);
  BigInt prod = BigInt::from_u64(1);
  for (u64 q : plan.primes) {
    EXPECT_GE(q, 5000u);
    EXPECT_GT(q, plan.code_length);
    prod = prod.mul_u64(q);
  }
  EXPECT_GT(prod, BigInt::power_of_two(81));
}

TEST(PrimePlan, ForcedPrimeCount) {
  ProofSpec spec;
  spec.degree_bound = 10;
  PrimePlan plan = plan_primes(spec, 1.0, 4);
  EXPECT_EQ(plan.primes.size(), 4u);
  // Distinct and ascending.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(plan.primes[i], plan.primes[i - 1]);
  }
}

TEST(PrimePlan, RejectsBadRedundancy) {
  ProofSpec spec;
  EXPECT_THROW(plan_primes(spec, 0.5), std::invalid_argument);
}

TEST(Cluster, SymbolOwnerBalanced) {
  const std::size_t e = 103, k = 7;
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < e; ++i) {
    std::size_t owner = Cluster::symbol_owner(i, e, k);
    ASSERT_LT(owner, k);
    ++counts[owner];
    if (i > 0) {
      EXPECT_GE(owner, Cluster::symbol_owner(i - 1, e, k));  // contiguous
    }
  }
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*mx - *mn, 1u) << "chunks must be balanced within 1 symbol";
}

TEST(Cluster, HonestRunRecoversAnswer) {
  auto input = toy_input(40, 1);
  u64 expect = std::accumulate(input.begin(), input.end(), u64{0});
  ToyProblem problem(input);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  Cluster cluster(cfg);
  RunReport report = cluster.run(problem);
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.answers.size(), 1u);
  EXPECT_EQ(report.answers[0].to_u64(), expect);
  EXPECT_TRUE(report.implicated_nodes().empty());
  for (const auto& pr : report.per_prime) {
    EXPECT_EQ(pr.decode_status, DecodeStatus::kOk);
    EXPECT_TRUE(pr.verified);
    EXPECT_TRUE(pr.corrected_symbols.empty());
  }
}

TEST(Cluster, WorkloadBalancedAcrossNodes) {
  ToyProblem problem(toy_input(64, 2));
  ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.systematic_encode = false;  // every node evaluates its full chunk
  Cluster cluster(cfg);
  RunReport report = cluster.run(problem);
  ASSERT_TRUE(report.success);
  std::size_t mn = SIZE_MAX, mx = 0, total = 0;
  for (const auto& ns : report.node_stats) {
    mn = std::min(mn, ns.symbols_computed);
    mx = std::max(mx, ns.symbols_computed);
    total += ns.symbols_computed;
  }
  // Per prime each node gets a balanced chunk; across primes this
  // stays balanced within one symbol per prime.
  EXPECT_LE(mx - mn, report.num_primes);
  EXPECT_EQ(total, report.code_length * report.num_primes);
}

TEST(Cluster, SystematicEncodeSkipsParityEvaluations) {
  ToyProblem problem(toy_input(64, 2));
  ClusterConfig cfg;
  cfg.num_nodes = 16;
  ASSERT_TRUE(cfg.systematic_encode);  // the default fast path
  Cluster cluster(cfg);
  RunReport report = cluster.run(problem);
  ASSERT_TRUE(report.success);
  // Evaluator work covers exactly the message prefix — d+1 symbols
  // per prime, however it lands across the owning nodes — and the
  // trailing parity-only nodes never construct an evaluator.
  std::size_t total = 0;
  for (const auto& ns : report.node_stats) total += ns.symbols_computed;
  EXPECT_EQ(total, report.proof_symbols * report.num_primes);
  EXPECT_LT(total, report.code_length * report.num_primes);
  EXPECT_EQ(report.node_stats.back().symbols_computed, 0u);
}

class ByzantineModes : public ::testing::TestWithParam<ByzantineStrategy> {};

TEST_P(ByzantineModes, ToleratedWithinRadiusAndIdentified) {
  auto input = toy_input(30, 3);
  u64 expect = std::accumulate(input.begin(), input.end(), u64{0});
  ToyProblem problem(input);
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.redundancy = 3.0;  // e ~ 3(d+1): radius ~ (e-d-1)/2 ~ d
  Cluster cluster(cfg);
  // Corrupt 2 of 10 nodes: ~2e/10 symbols < radius ~ e/3.
  ByzantineAdversary adversary({3, 7}, GetParam(), 99);
  RunReport report = cluster.run(problem, &adversary);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.answers[0].to_u64(), expect);
  auto implicated = report.implicated_nodes();
  // Every implicated node is actually corrupt; off-by-one/random
  // corruption makes identification exact with overwhelming
  // probability (silent nodes emitting the true value 0 are possible
  // but the toy inputs make that measure-zero here).
  EXPECT_EQ(implicated, (std::vector<std::size_t>{3, 7}));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ByzantineModes,
    ::testing::Values(ByzantineStrategy::kSilent, ByzantineStrategy::kRandom,
                      ByzantineStrategy::kOffByOne,
                      ByzantineStrategy::kColludingPolynomial));

TEST(Cluster, FailureDetectedBeyondRadius) {
  // Corrupt a majority of the nodes: decoding must fail or, if a
  // colluding adversary drags the word to another codeword, the
  // random-point verification must reject. Either way success=false
  // — the paper's "each node detects this individually regardless of
  // how many nodes experienced byzantine failure".
  ToyProblem problem(toy_input(30, 4));
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.redundancy = 1.2;
  Cluster cluster(cfg);
  for (ByzantineStrategy s :
       {ByzantineStrategy::kRandom, ByzantineStrategy::kColludingPolynomial,
        ByzantineStrategy::kOffByOne}) {
    ByzantineAdversary adversary({0, 1, 2, 3, 4, 5, 6}, s, 7);
    RunReport report = cluster.run(problem, &adversary);
    EXPECT_FALSE(report.success);
  }
}

TEST(Verifier, AcceptsCorrectRejectsTampered) {
  auto input = toy_input(20, 5);
  ToyProblem problem(input);
  PrimeField f(find_ntt_prime(1024, 8));
  // Build the true proof directly: coefficients are the input.
  Poly proof;
  proof.c.assign(input.begin(), input.end());
  for (u64& c : proof.c) c = f.reduce(c);
  proof.trim();
  VerifyResult ok = verify_proof(problem, proof, f, 3, 42);
  EXPECT_TRUE(ok.accepted);

  Poly bad = proof;
  bad.c[5] = f.add(bad.c[5], 1);
  // d/q ~ 19/1279: a single trial might pass; 8 trials make the
  // acceptance probability ~ (19/1279)^8 ~ 1e-15.
  VerifyResult rej = verify_proof(problem, bad, f, 8, 43);
  EXPECT_FALSE(rej.accepted);
}

TEST(Verifier, SoundnessErrorMatchesDegreeOverQ) {
  // Empirical soundness: a proof differing in one coefficient agrees
  // with P at exactly deg(diff)<=d points, so a single-trial check
  // accepts with probability <= d/q. Measure over many trials.
  auto input = toy_input(16, 6);
  ToyProblem problem(input);
  PrimeField f(257);
  Poly proof;
  proof.c.assign(input.begin(), input.end());
  for (u64& c : proof.c) c = f.reduce(c);
  Poly bad = proof;
  bad.c[3] = f.add(bad.c[3], 7);
  auto evaluator = problem.make_evaluator(f);
  int accepted = 0;
  const int trials = 2000;
  std::mt19937_64 rng(11);
  for (int t = 0; t < trials; ++t) {
    u64 x0 = rng() % f.modulus();
    if (evaluator->eval(x0) == poly_eval(bad, x0, f)) ++accepted;
  }
  // Expected acceptance rate: (#agreement points)/q <= 15/257 ~ 5.8%.
  EXPECT_LT(accepted, trials * 15 / 257 + 50);
}

TEST(Cluster, RejectsDegenerateConfig) {
  ClusterConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
  ClusterConfig cfg2;
  cfg2.redundancy = 0.9;
  EXPECT_THROW(Cluster{cfg2}, std::invalid_argument);
}

TEST(Cluster, SingleNodeStillWorks) {
  // K=1 degenerates to the sequential algorithm with a self-check.
  auto input = toy_input(10, 8);
  u64 expect = std::accumulate(input.begin(), input.end(), u64{0});
  ToyProblem problem(input);
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  Cluster cluster(cfg);
  RunReport report = cluster.run(problem);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.answers[0].to_u64(), expect);
}

TEST(Cluster, MorePrimesThanNeededStillConsistent) {
  auto input = toy_input(12, 9);
  u64 expect = std::accumulate(input.begin(), input.end(), u64{0});
  ToyProblem problem(input);
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_primes = 5;
  Cluster cluster(cfg);
  RunReport report = cluster.run(problem);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.num_primes, 5u);
  EXPECT_EQ(report.answers[0].to_u64(), expect);
  // Residues agree across primes after reduction.
  for (const auto& pr : report.per_prime) {
    EXPECT_EQ(pr.answer_residues[0], expect % pr.prime);
  }
}

}  // namespace
}  // namespace camelot
