// Tests for the polynomial-time Camelot designs (Theorems 11 and 12).
#include <gtest/gtest.h>

#include "apps/conv3sum.hpp"
#include "apps/csp2.hpp"
#include "apps/hamming.hpp"
#include "apps/ov.hpp"
#include "core/cluster.hpp"
#include "field/primes.hpp"

namespace camelot {
namespace {

RunReport run_cluster(const CamelotProblem& p, std::size_t nodes = 4,
                      double redundancy = 1.25) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.redundancy = redundancy;
  Cluster cluster(cfg);
  return cluster.run(p);
}

TEST(Ov, BruteKnownCase) {
  // a = [1,0], b rows: [0,1] orthogonal to a-row0, [1,0] not.
  BoolMatrix a, b;
  a.rows = b.rows = 2;
  a.cols = b.cols = 2;
  a.bits = {1, 0, 0, 1};
  b.bits = {0, 1, 1, 0};
  auto c = count_orthogonal_brute(a, b);
  EXPECT_EQ(c, (std::vector<u64>{1, 1}));
}

class OvShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(OvShapes, CamelotMatchesBrute) {
  auto [n, t] = GetParam();
  BoolMatrix a = BoolMatrix::random(n, t, 0.35, n * 100 + t);
  BoolMatrix b = BoolMatrix::random(n, t, 0.35, n * 200 + t);
  auto expect = count_orthogonal_brute(a, b);
  OrthogonalVectorsProblem problem(a, b);
  RunReport report = run_cluster(problem);
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.answers.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(report.answers[i].to_u64(), expect[i]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OvShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 3},
                      std::pair<std::size_t, std::size_t>{16, 8},
                      std::pair<std::size_t, std::size_t>{32, 5},
                      std::pair<std::size_t, std::size_t>{10, 12}));

TEST(Ov, ProofSizeIsNearLinear) {
  // Theorem 11(1): proof size ~O(nt) with c = 1.
  BoolMatrix a = BoolMatrix::random(64, 8, 0.3, 1);
  BoolMatrix b = BoolMatrix::random(64, 8, 0.3, 2);
  OrthogonalVectorsProblem problem(a, b);
  EXPECT_LE(problem.spec().degree_bound, 64u * 8u);
}

TEST(Hamming, BruteRowSumsToN) {
  BoolMatrix a = BoolMatrix::random(6, 4, 0.5, 3);
  BoolMatrix b = BoolMatrix::random(6, 4, 0.5, 4);
  auto counts = hamming_distribution_brute(a, b);
  for (std::size_t i = 0; i < 6; ++i) {
    u64 row = 0;
    for (std::size_t h = 0; h <= 4; ++h) row += counts[i * 5 + h];
    EXPECT_EQ(row, 6u);
  }
}

TEST(Hamming, CamelotMatchesBrute) {
  for (auto [n, t] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 3}, {8, 5}, {12, 4}}) {
    BoolMatrix a = BoolMatrix::random(n, t, 0.4, n + t);
    BoolMatrix b = BoolMatrix::random(n, t, 0.6, n * 3 + t);
    auto expect = hamming_distribution_brute(a, b);
    HammingDistributionProblem problem(a, b);
    RunReport report = run_cluster(problem);
    ASSERT_TRUE(report.success) << n << "x" << t;
    ASSERT_EQ(report.answers.size(), n * (t + 1));
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(report.answers[i].to_u64(), expect[i]) << "slot " << i;
    }
  }
}

TEST(Hamming, OrthogonalityIsDistanceSpecialCase) {
  // For 0/1 vectors, distance counts refine orthogonality: row pairs
  // at distance = popcount(a_i) + popcount(b_k) are disjoint-support.
  BoolMatrix a = BoolMatrix::random(6, 5, 0.3, 9);
  BoolMatrix b = BoolMatrix::random(6, 5, 0.3, 10);
  auto dist = hamming_distribution_brute(a, b);
  auto orth = count_orthogonal_brute(a, b);
  for (std::size_t i = 0; i < 6; ++i) {
    u64 disjoint = 0;
    for (std::size_t k = 0; k < 6; ++k) {
      std::size_t pa = 0, pb = 0, d = 0;
      for (std::size_t j = 0; j < 5; ++j) {
        pa += a.at(i, j);
        pb += b.at(k, j);
        d += a.at(i, j) != b.at(k, j);
      }
      if (d == pa + pb) ++disjoint;
    }
    EXPECT_EQ(disjoint, orth[i]);
  }
}

TEST(RippleCarry, GadgetOnBooleanInputs) {
  PrimeField f(find_ntt_prime(1 << 12, 6));
  const unsigned bits = 5;
  for (u64 y = 0; y < 32; y += 3) {
    for (u64 z = 0; z < 32; z += 5) {
      for (u64 w = 0; w < 32; w += 7) {
        std::vector<u64> yb(bits), zb(bits), wb(bits);
        for (unsigned j = 0; j < bits; ++j) {
          yb[j] = (y >> j) & 1;
          zb[j] = (z >> j) & 1;
          wb[j] = (w >> j) & 1;
        }
        EXPECT_EQ(ripple_carry_equal(yb, zb, wb, f),
                  (y + z == w) ? 1u : 0u)
            << y << "+" << z << "=" << w;
      }
    }
  }
}

TEST(Conv3Sum, BruteKnownCase) {
  // A = [1,2,3,4,5,6]: A[1]+A[1]=A[2], A[1]+A[2]=A[3], A[2]+A[1]=A[3],
  // A[1]+A[3]=A[4] (i<=3 only), A[2]+A[2]=A[4], A[3]+A[1]=A[4], ...
  std::vector<u64> a = {1, 2, 3, 4, 5, 6};
  auto c = conv3sum_brute(a);
  // c_1: l with A[1]+A[l]=A[1+l]: l=1 (1+1=2), l=2 (1+2=3), l=3
  // (1+3=4) -> 3.
  EXPECT_EQ(c[0], 3u);
  // c_2: 2+1=3? A[3]=3 yes; 2+2=A[4]=4 yes; 2+3=A[5]=5 yes -> 3.
  EXPECT_EQ(c[1], 3u);
}

TEST(Conv3Sum, CamelotMatchesBrute) {
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 2; ++trial) {
    std::vector<u64> values(8);
    for (u64& v : values) v = rng() % 16;  // 4-bit values
    auto expect = conv3sum_brute(values);
    Conv3SumProblem problem(values, 5);  // 5 bits: sums can carry
    RunReport report = run_cluster(problem);
    ASSERT_TRUE(report.success) << trial;
    ASSERT_EQ(report.answers.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(report.answers[i].to_u64(), expect[i]) << "i=" << i;
    }
  }
}

TEST(Conv3Sum, NoWitnesses) {
  std::vector<u64> values = {9, 9, 9, 9};  // 9+9=18 != 9
  Conv3SumProblem problem(values, 4);
  RunReport report = run_cluster(problem);
  ASSERT_TRUE(report.success);
  for (const BigInt& c : report.answers) EXPECT_TRUE(c.is_zero());
}

TEST(Csp2, BruteHistogramTotals) {
  Csp2Instance inst = Csp2Instance::random(6, 2, 5, 0.5, 1);
  auto hist = csp2_histogram_brute(inst);
  u64 total = 0;
  for (u64 h : hist) total += h;
  EXPECT_EQ(total, 64u);  // 2^6 assignments
}

TEST(Csp2, SequentialForm62MatchesBrute) {
  for (u64 seed = 1; seed <= 2; ++seed) {
    Csp2Instance inst = Csp2Instance::random(6, 2, 5, 0.55, seed);
    auto expect = csp2_histogram_brute(inst);
    auto got = csp2_histogram_form62(inst, strassen_decomposition());
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_EQ(got[k].to_u64(), expect[k]) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(Csp2, CamelotMatchesBrute) {
  Csp2Instance inst = Csp2Instance::random(6, 2, 4, 0.5, 7);
  auto expect = csp2_histogram_brute(inst);
  Csp2Problem problem(inst, strassen_decomposition());
  RunReport report = run_cluster(problem);
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.answers.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_EQ(report.answers[k].to_u64(), expect[k]) << "k=" << k;
  }
}

TEST(Csp2, TernaryAlphabet) {
  Csp2Instance inst = Csp2Instance::random(6, 3, 3, 0.4, 11);
  auto expect = csp2_histogram_brute(inst);
  auto got = csp2_histogram_form62(inst, strassen_decomposition());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_EQ(got[k].to_u64(), expect[k]) << "k=" << k;
  }
}

}  // namespace
}  // namespace camelot
