#include "rs/gao.hpp"
#include "rs/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

Poly random_message(std::size_t d, const PrimeField& f,
                    std::mt19937_64& rng) {
  Poly p;
  p.c.resize(d + 1);
  for (u64& v : p.c) v = rng() % f.modulus();
  return p;
}

TEST(ReedSolomon, EncodeIsBatchEvaluation) {
  PrimeField f(7681);
  ReedSolomonCode code(f, 3, std::size_t{10});
  Poly msg{{5, 0, 2, 1}};  // x^3 + 2x^2 + 5
  auto cw = code.encode(msg);
  ASSERT_EQ(cw.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cw[i], poly_eval(msg, i + 1, f));
  }
}

TEST(ReedSolomon, ParameterValidation) {
  PrimeField f(17);
  EXPECT_THROW(ReedSolomonCode(f, 5, std::size_t{5}), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCode(f, 1, std::size_t{17}), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomonCode(f, 1, std::size_t{16}));
  ReedSolomonCode code(f, 2, std::size_t{10});
  EXPECT_EQ(code.decoding_radius(), 3u);
  Poly too_big{{1, 1, 1, 1}};
  EXPECT_THROW(code.encode(too_big), std::invalid_argument);
}

TEST(ReedSolomon, MinimumDistanceProperty) {
  // Two distinct codewords of a [e, d+1] RS code agree in <= d places.
  PrimeField f(97);
  ReedSolomonCode code(f, 4, std::size_t{20});
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Poly m1 = random_message(4, f, rng), m2 = random_message(4, f, rng);
    if (poly_equal(m1, m2)) continue;
    auto c1 = code.encode(m1), c2 = code.encode(m2);
    int agreements = 0;
    for (std::size_t i = 0; i < 20; ++i) agreements += c1[i] == c2[i];
    EXPECT_LE(agreements, 4);
  }
}

TEST(Gao, DecodeCleanWord) {
  PrimeField f(7681);
  std::mt19937_64 rng(2);
  ReedSolomonCode code(f, 6, std::size_t{25});
  Poly msg = random_message(6, f, rng);
  auto cw = code.encode(msg);
  GaoResult res = gao_decode(code, cw);
  ASSERT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(poly_equal(res.message, msg));
  EXPECT_TRUE(res.error_locations.empty());
  EXPECT_EQ(res.corrected, cw);
}

class GaoErrors : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaoErrors, CorrectsUpToRadiusAndReportsLocations) {
  PrimeField f(find_ntt_prime(1 << 10, 10));
  std::mt19937_64 rng(GetParam() + 17);
  const std::size_t d = 10, e = 41;  // radius = 15
  ReedSolomonCode code(f, d, e);
  ASSERT_EQ(code.decoding_radius(), 15u);
  const std::size_t nerr = GetParam();
  Poly msg = random_message(d, f, rng);
  auto cw = code.encode(msg);
  auto received = cw;
  // Corrupt nerr distinct positions with guaranteed-different values.
  std::vector<std::size_t> pos(e);
  std::iota(pos.begin(), pos.end(), std::size_t{0});
  std::shuffle(pos.begin(), pos.end(), rng);
  std::vector<std::size_t> corrupted(pos.begin(), pos.begin() + nerr);
  std::sort(corrupted.begin(), corrupted.end());
  for (std::size_t p : corrupted) {
    received[p] = f.add(received[p], 1 + rng() % (f.modulus() - 1));
  }
  GaoResult res = gao_decode(code, received);
  ASSERT_EQ(res.status, DecodeStatus::kOk) << "errors=" << nerr;
  EXPECT_TRUE(poly_equal(res.message, msg));
  EXPECT_EQ(res.error_locations, corrupted);
  EXPECT_EQ(res.corrected, cw);
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, GaoErrors,
                         ::testing::Values(0, 1, 2, 5, 10, 14, 15));

TEST(Gao, FailsBeyondRadiusForRandomCorruption) {
  // With many more errors than the radius the received word is w.h.p.
  // not within radius of any codeword -> decoding failure.
  PrimeField f(find_ntt_prime(1 << 16, 16));
  std::mt19937_64 rng(3);
  const std::size_t d = 8, e = 25;  // radius = 8
  ReedSolomonCode code(f, d, e);
  Poly msg = random_message(d, f, rng);
  auto received = code.encode(msg);
  for (std::size_t i = 0; i < 20; ++i) {
    received[i] = rng() % f.modulus();
  }
  GaoResult res = gao_decode(code, received);
  // Either decode failure, or decode to something that differs from
  // msg in which case the caller's probabilistic check would catch it.
  if (res.status == DecodeStatus::kOk) {
    EXPECT_FALSE(poly_equal(res.message, msg));
  } else {
    SUCCEED();
  }
}

TEST(Gao, DecodesToNearbyCodewordNotOriginal) {
  // If the adversary replaces the word with a *valid different*
  // codeword the decoder must return that codeword (zero errors).
  PrimeField f(7681);
  std::mt19937_64 rng(4);
  ReedSolomonCode code(f, 3, std::size_t{15});
  Poly m1 = random_message(3, f, rng);
  Poly m2 = random_message(3, f, rng);
  auto cw2 = code.encode(m2);
  GaoResult res = gao_decode(code, cw2);
  ASSERT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(poly_equal(res.message, m2));
  EXPECT_FALSE(poly_equal(res.message, m1));
}

TEST(Gao, WorksAtFullLengthEqualsFieldMinusOne) {
  // e = q - 1 uses every nonzero point.
  PrimeField f(31);
  ReedSolomonCode code(f, 4, std::size_t{30});
  std::mt19937_64 rng(5);
  Poly msg = random_message(4, f, rng);
  auto received = code.encode(msg);
  received[7] = f.add(received[7], 3);
  received[21] = f.add(received[21], 9);
  GaoResult res = gao_decode(code, received);
  ASSERT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(poly_equal(res.message, msg));
  EXPECT_EQ(res.error_locations, (std::vector<std::size_t>{7, 21}));
}

TEST(Gao, RejectsWrongLength) {
  PrimeField f(17);
  ReedSolomonCode code(f, 2, std::size_t{10});
  std::vector<u64> short_word(5, 0);
  EXPECT_THROW(gao_decode(code, short_word), std::invalid_argument);
}

TEST(Gao, ZeroMessageAllZeroCodeword) {
  PrimeField f(97);
  ReedSolomonCode code(f, 5, std::size_t{20});
  std::vector<u64> zeros(20, 0);
  GaoResult res = gao_decode(code, zeros);
  ASSERT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(res.message.is_zero());
}

}  // namespace
}  // namespace camelot
