#include "poly/poly.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

Poly random_poly(std::size_t deg, const PrimeField& f, std::mt19937_64& rng) {
  Poly p;
  p.c.resize(deg + 1);
  for (u64& v : p.c) v = rng() % f.modulus();
  if (p.c.back() == 0) p.c.back() = 1;
  return p;
}

TEST(Poly, ZeroAndConstant) {
  PrimeField f(17);
  Poly z = Poly::zero();
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  Poly c = Poly::constant(20, f);  // 20 mod 17 = 3
  EXPECT_EQ(c.degree(), 0);
  EXPECT_EQ(c.coeff(0), 3u);
  EXPECT_TRUE(Poly::constant(17, f).is_zero());
}

TEST(Poly, LinearRoot) {
  PrimeField f(17);
  Poly p = Poly::linear_root(5, f);  // x - 5
  EXPECT_EQ(poly_eval(p, 5, f), 0u);
  EXPECT_EQ(poly_eval(p, 6, f), 1u);
}

TEST(Poly, AddSubInverse) {
  PrimeField f(97);
  std::mt19937_64 rng(1);
  Poly a = random_poly(10, f, rng), b = random_poly(7, f, rng);
  Poly s = poly_add(a, b, f);
  EXPECT_TRUE(poly_equal(poly_sub(s, b, f), a));
  EXPECT_TRUE(poly_sub(a, a, f).is_zero());
}

TEST(Poly, MulMatchesEvaluation) {
  PrimeField f(101);
  std::mt19937_64 rng(2);
  Poly a = random_poly(6, f, rng), b = random_poly(9, f, rng);
  Poly p = poly_mul(a, b, f);
  EXPECT_EQ(p.degree(), 15);
  for (u64 x = 0; x < 30; ++x) {
    EXPECT_EQ(poly_eval(p, x, f),
              f.mul(poly_eval(a, x, f), poly_eval(b, x, f)));
  }
}

TEST(Poly, MulByZeroAndOne) {
  PrimeField f(97);
  std::mt19937_64 rng(3);
  Poly a = random_poly(5, f, rng);
  EXPECT_TRUE(poly_mul(a, Poly::zero(), f).is_zero());
  EXPECT_TRUE(poly_equal(poly_mul(a, Poly::constant(1, f), f), a));
}

class MulBackends : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MulBackends, AllAgree) {
  // NTT-friendly prime so all three paths are exercised.
  PrimeField f(find_ntt_prime(1 << 16, 16));
  std::mt19937_64 rng(GetParam());
  const std::size_t da = GetParam(), db = (GetParam() * 7) % 900 + 1;
  Poly a = random_poly(da, f, rng), b = random_poly(db, f, rng);
  Poly school = poly_mul_schoolbook(a, b, f);
  Poly kara = poly_mul_karatsuba(a, b, f);
  Poly fast = poly_mul(a, b, f);
  EXPECT_TRUE(poly_equal(school, kara));
  EXPECT_TRUE(poly_equal(school, fast));
}

INSTANTIATE_TEST_SUITE_P(Degrees, MulBackends,
                         ::testing::Values(1, 2, 16, 31, 32, 33, 64, 100, 255,
                                           256, 257, 500, 777));

TEST(Poly, DivRemIdentityRandom) {
  PrimeField f(7681);
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    Poly a = random_poly(rng() % 40, f, rng);
    Poly b = random_poly(rng() % 15, f, rng);
    Poly q, r;
    poly_divrem(a, b, f, &q, &r);
    EXPECT_LT(r.degree(), b.degree());
    EXPECT_TRUE(poly_equal(poly_add(poly_mul(q, b, f), r, f), a));
  }
}

TEST(Poly, DivRemSmallerDividend) {
  PrimeField f(17);
  Poly a = Poly{{1, 2}};        // 2x + 1
  Poly b = Poly{{0, 0, 1}};     // x^2
  Poly q, r;
  poly_divrem(a, b, f, &q, &r);
  EXPECT_TRUE(q.is_zero());
  EXPECT_TRUE(poly_equal(r, a));
}

TEST(Poly, DivByZeroThrows) {
  PrimeField f(17);
  EXPECT_THROW(poly_rem(Poly{{1}}, Poly::zero(), f), std::invalid_argument);
}

TEST(Poly, GcdOfMultiples) {
  PrimeField f(101);
  std::mt19937_64 rng(5);
  Poly g = random_poly(4, f, rng);
  Poly a = poly_mul(g, random_poly(3, f, rng), f);
  Poly b = poly_mul(g, random_poly(5, f, rng), f);
  Poly got = poly_gcd(a, b, f);
  // gcd must be a (monic) multiple of g of the same degree unless the
  // cofactors share a factor; verify divisibility instead.
  EXPECT_GE(got.degree(), g.degree());
  EXPECT_TRUE(poly_rem(a, got, f).is_zero());
  EXPECT_TRUE(poly_rem(b, got, f).is_zero());
  EXPECT_EQ(got.c.back(), 1u);  // monic
}

TEST(Poly, GcdCoprime) {
  PrimeField f(101);
  // x and x+1 are coprime.
  Poly a{{0, 1}}, b{{1, 1}};
  Poly g = poly_gcd(a, b, f);
  EXPECT_EQ(g.degree(), 0);
}

TEST(Poly, XgcdPartialInvariant) {
  PrimeField f(7681);
  std::mt19937_64 rng(6);
  Poly a = random_poly(20, f, rng), b = random_poly(15, f, rng);
  for (int stop : {0, 5, 10, 18}) {
    Poly g, u, v;
    poly_xgcd_partial(a, b, stop, f, &g, &u, &v);
    // Invariant: u*a + v*b = g.
    Poly lhs = poly_add(poly_mul(u, a, f), poly_mul(v, b, f), f);
    EXPECT_TRUE(poly_equal(lhs, g)) << "stop=" << stop;
    EXPECT_LT(g.degree(), stop == 0 ? 1 : std::max(stop, 1));
  }
}

TEST(Poly, EvalManyMatchesHorner) {
  PrimeField f(97);
  std::mt19937_64 rng(7);
  Poly p = random_poly(12, f, rng);
  std::vector<u64> xs = {0, 1, 5, 50, 96};
  auto ys = poly_eval_many(p, xs, f);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(ys[i], poly_eval(p, xs[i], f));
  }
}

TEST(Poly, DerivativePowerRule) {
  PrimeField f(101);
  Poly p{{7, 0, 0, 1}};  // x^3 + 7
  Poly d = poly_derivative(p, f);
  // 3x^2
  EXPECT_EQ(d.degree(), 2);
  EXPECT_EQ(d.coeff(2), 3u);
  EXPECT_EQ(d.coeff(0), 0u);
  EXPECT_TRUE(poly_derivative(Poly::constant(5, f), f).is_zero());
}

TEST(Poly, DerivativeLeibniz) {
  PrimeField f(7681);
  std::mt19937_64 rng(8);
  Poly a = random_poly(6, f, rng), b = random_poly(4, f, rng);
  Poly lhs = poly_derivative(poly_mul(a, b, f), f);
  Poly rhs = poly_add(poly_mul(poly_derivative(a, f), b, f),
                      poly_mul(a, poly_derivative(b, f), f), f);
  EXPECT_TRUE(poly_equal(lhs, rhs));
}

}  // namespace
}  // namespace camelot
