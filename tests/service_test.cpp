// Tests for the concurrent ProofService facade: several distinct
// problems in flight at once, shared per-prime field state, prime
// plan caching, adversarial submissions and shutdown draining.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "apps/conv3sum.hpp"
#include "apps/csp2.hpp"
#include "apps/hamming.hpp"
#include "apps/ov.hpp"
#include "core/cluster.hpp"
#include "core/proof_service.hpp"
#include "linalg/tensor.hpp"

namespace camelot {
namespace {

std::vector<std::shared_ptr<const CamelotProblem>> four_problems() {
  std::vector<std::shared_ptr<const CamelotProblem>> out;
  out.push_back(std::make_shared<OrthogonalVectorsProblem>(
      BoolMatrix::random(8, 5, 0.35, 11), BoolMatrix::random(8, 5, 0.35, 22)));
  out.push_back(std::make_shared<HammingDistributionProblem>(
      BoolMatrix::random(6, 4, 0.4, 33), BoolMatrix::random(6, 4, 0.4, 44)));
  out.push_back(std::make_shared<Conv3SumProblem>(
      std::vector<u64>{3, 1, 4, 1, 5, 9, 2, 6}, 6u));
  out.push_back(std::make_shared<Csp2Problem>(
      Csp2Instance::random(6, 2, 4, 0.5, 77), strassen_decomposition()));
  return out;
}

TEST(ProofService, ServesFourDistinctProblemsConcurrently) {
  ProofServiceConfig svc;
  svc.num_workers = 4;  // all four jobs genuinely in flight at once
  ProofService service(svc);

  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 1.5;

  auto problems = four_problems();
  std::vector<std::future<RunReport>> futures;
  futures.reserve(problems.size());
  for (const auto& p : problems) futures.push_back(service.submit(p, cfg));

  for (std::size_t i = 0; i < problems.size(); ++i) {
    RunReport report = futures[i].get();
    ASSERT_TRUE(report.success) << "problem " << i;
    // Same answers as a stand-alone run of the legacy facade.
    RunReport solo = Cluster(cfg).run(*problems[i]);
    ASSERT_EQ(report.answers.size(), solo.answers.size());
    for (std::size_t a = 0; a < report.answers.size(); ++a) {
      EXPECT_EQ(report.answers[a], solo.answers[a]);
    }
  }

  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  // Per-prime field state was populated in the shared cache.
  EXPECT_GT(service.field_cache()->stats().mont_misses, 0u);
}

TEST(ProofService, CachesPlansAndFieldStateAcrossResubmission) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 4;

  auto problems = four_problems();
  const auto& p = problems[0];
  RunReport first = service.submit(p, cfg).get();
  const ProofService::Stats cold = service.stats();
  EXPECT_EQ(cold.plan_cache_misses, 1u);
  const FieldCache::Stats field_cold = service.field_cache()->stats();

  RunReport second = service.submit(p, cfg).get();
  const ProofService::Stats warm = service.stats();
  EXPECT_EQ(warm.plan_cache_misses, 1u);
  EXPECT_GE(warm.plan_cache_hits, 1u);
  const FieldCache::Stats field_warm = service.field_cache()->stats();
  EXPECT_EQ(field_warm.mont_misses, field_cold.mont_misses);
  EXPECT_EQ(field_warm.ntt_misses, field_cold.ntt_misses);
  EXPECT_GT(field_warm.mont_hits, field_cold.mont_hits);

  ASSERT_TRUE(first.success);
  ASSERT_TRUE(second.success);
  ASSERT_EQ(first.answers.size(), second.answers.size());
  for (std::size_t a = 0; a < first.answers.size(); ++a) {
    EXPECT_EQ(first.answers[a], second.answers[a]);
  }
}

TEST(ProofService, AdversarialSubmission) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.redundancy = 3.0;

  auto problems = four_problems();
  auto adversary = std::make_shared<const ByzantineAdversary>(
      std::vector<std::size_t>{3, 7}, ByzantineStrategy::kOffByOne, 99);
  RunReport report = service.submit(problems[0], cfg, adversary).get();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.implicated_nodes(), (std::vector<std::size_t>{3, 7}));
}

TEST(ProofService, ResultsIndependentOfWorkerCount) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  auto problems = four_problems();

  std::vector<RunReport> wide, narrow;
  {
    ProofService service({.num_workers = 8});
    std::vector<std::future<RunReport>> fs;
    for (const auto& p : problems) fs.push_back(service.submit(p, cfg));
    for (auto& f : fs) wide.push_back(f.get());
  }
  {
    ProofService service({.num_workers = 1});
    std::vector<std::future<RunReport>> fs;
    for (const auto& p : problems) fs.push_back(service.submit(p, cfg));
    for (auto& f : fs) narrow.push_back(f.get());
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    ASSERT_EQ(wide[i].success, narrow[i].success);
    ASSERT_EQ(wide[i].answers.size(), narrow[i].answers.size());
    for (std::size_t a = 0; a < wide[i].answers.size(); ++a) {
      EXPECT_EQ(wide[i].answers[a], narrow[i].answers[a]);
    }
    for (std::size_t pi = 0; pi < wide[i].per_prime.size(); ++pi) {
      EXPECT_EQ(wide[i].per_prime[pi].answer_residues,
                narrow[i].per_prime[pi].answer_residues);
    }
  }
}

TEST(ProofService, DestructorDrainsQueuedJobs) {
  auto problems = four_problems();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  std::vector<std::future<RunReport>> futures;
  {
    ProofService service({.num_workers = 1});
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& p : problems) {
        futures.push_back(service.submit(p, cfg));
      }
    }
    // Service goes out of scope with most jobs still queued.
  }
  for (auto& f : futures) {
    RunReport report = f.get();  // never a broken promise
    EXPECT_TRUE(report.success);
  }
}

TEST(ProofService, RejectsNullProblem) {
  ProofService service({.num_workers = 1});
  EXPECT_THROW(service.submit(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace camelot
