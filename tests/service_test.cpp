// Tests for the concurrent ProofService facade: several distinct
// problems in flight at once, shared per-prime field state, prime
// plan and code caching, adversarial submissions, shutdown draining,
// and the backpressure scheduler (bounded queue, priorities, per-job
// deadlines).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/conv3sum.hpp"
#include "apps/csp2.hpp"
#include "apps/hamming.hpp"
#include "apps/ov.hpp"
#include "core/cluster.hpp"
#include "core/proof_service.hpp"
#include "core/proof_session.hpp"
#include "core/symbol_stream.hpp"
#include "linalg/tensor.hpp"

namespace camelot {
namespace {

std::vector<std::shared_ptr<const CamelotProblem>> four_problems() {
  std::vector<std::shared_ptr<const CamelotProblem>> out;
  out.push_back(std::make_shared<OrthogonalVectorsProblem>(
      BoolMatrix::random(8, 5, 0.35, 11), BoolMatrix::random(8, 5, 0.35, 22)));
  out.push_back(std::make_shared<HammingDistributionProblem>(
      BoolMatrix::random(6, 4, 0.4, 33), BoolMatrix::random(6, 4, 0.4, 44)));
  out.push_back(std::make_shared<Conv3SumProblem>(
      std::vector<u64>{3, 1, 4, 1, 5, 9, 2, 6}, 6u));
  out.push_back(std::make_shared<Csp2Problem>(
      Csp2Instance::random(6, 2, 4, 0.5, 77), strassen_decomposition()));
  return out;
}

TEST(ProofService, ServesFourDistinctProblemsConcurrently) {
  ProofServiceConfig svc;
  svc.num_workers = 4;  // all four jobs genuinely in flight at once
  ProofService service(svc);

  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 1.5;

  auto problems = four_problems();
  std::vector<std::future<RunReport>> futures;
  futures.reserve(problems.size());
  for (const auto& p : problems) futures.push_back(service.submit(p, cfg));

  for (std::size_t i = 0; i < problems.size(); ++i) {
    RunReport report = futures[i].get();
    ASSERT_TRUE(report.success) << "problem " << i;
    // Same answers as a stand-alone run of the legacy facade.
    RunReport solo = Cluster(cfg).run(*problems[i]);
    ASSERT_EQ(report.answers.size(), solo.answers.size());
    for (std::size_t a = 0; a < report.answers.size(); ++a) {
      EXPECT_EQ(report.answers[a], solo.answers[a]);
    }
  }

  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  // Per-prime field state was populated in the shared cache.
  EXPECT_GT(service.field_cache()->stats().mont_misses, 0u);
  // The metrics surface mirrors both shared caches and records the
  // deepest queue: each submit pushes all of a job's prime tasks
  // under one lock, so the high-water mark saw at least one job's
  // worth of tasks.
  EXPECT_EQ(stats.field_cache.mont_misses,
            service.field_cache()->stats().mont_misses);
  EXPECT_EQ(stats.code_cache.misses, service.code_cache()->stats().misses);
  EXPECT_GT(stats.code_cache.misses, 0u);
  EXPECT_GT(stats.code_cache.resident, 0u);
  EXPECT_GT(stats.field_cache.resident, 0u);
  EXPECT_GE(stats.queue_depth_high_water, 1u);
}

TEST(ProofService, CachesPlansAndFieldStateAcrossResubmission) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 4;

  auto problems = four_problems();
  const auto& p = problems[0];
  RunReport first = service.submit(p, cfg).get();
  const ProofService::Stats cold = service.stats();
  EXPECT_EQ(cold.plan_cache_misses, 1u);
  const FieldCache::Stats field_cold = service.field_cache()->stats();

  RunReport second = service.submit(p, cfg).get();
  const ProofService::Stats warm = service.stats();
  EXPECT_EQ(warm.plan_cache_misses, 1u);
  EXPECT_GE(warm.plan_cache_hits, 1u);
  const FieldCache::Stats field_warm = service.field_cache()->stats();
  EXPECT_EQ(field_warm.mont_misses, field_cold.mont_misses);
  EXPECT_EQ(field_warm.ntt_misses, field_cold.ntt_misses);
  EXPECT_GT(field_warm.mont_hits, field_cold.mont_hits);
  // The aggregated Stats carries the same counters (one scrape point
  // for a metrics exporter).
  EXPECT_EQ(warm.field_cache.mont_hits, field_warm.mont_hits);
  EXPECT_EQ(warm.field_cache.ntt_hits, field_warm.ntt_hits);

  ASSERT_TRUE(first.success);
  ASSERT_TRUE(second.success);
  ASSERT_EQ(first.answers.size(), second.answers.size());
  for (std::size_t a = 0; a < first.answers.size(); ++a) {
    EXPECT_EQ(first.answers[a], second.answers[a]);
  }
}

TEST(ProofService, AdversarialSubmission) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.redundancy = 3.0;

  auto problems = four_problems();
  auto adversary = std::make_shared<const ByzantineAdversary>(
      std::vector<std::size_t>{3, 7}, ByzantineStrategy::kOffByOne, 99);
  RunReport report = service.submit(problems[0], cfg, adversary).get();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.implicated_nodes(), (std::vector<std::size_t>{3, 7}));

  // Corrupted primes exercised the decoder's remainder sequence; the
  // per-prime counters roll up into the service-wide metrics scrape.
  std::size_t steps = 0, calls = 0;
  for (const PrimeRunReport& pr : report.per_prime) {
    EXPECT_GT(pr.decode_quotient_steps, 0u);
    EXPECT_GE(pr.decode_hgcd_calls, 1u);
    steps += pr.decode_quotient_steps;
    calls += pr.decode_hgcd_calls;
  }
  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.decode_quotient_steps, steps);
  EXPECT_EQ(stats.decode_hgcd_calls, calls);
}

TEST(ProofService, ResultsIndependentOfWorkerCount) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  auto problems = four_problems();

  std::vector<RunReport> wide, narrow;
  {
    ProofService service({.num_workers = 8});
    std::vector<std::future<RunReport>> fs;
    for (const auto& p : problems) fs.push_back(service.submit(p, cfg));
    for (auto& f : fs) wide.push_back(f.get());
  }
  {
    ProofService service({.num_workers = 1});
    std::vector<std::future<RunReport>> fs;
    for (const auto& p : problems) fs.push_back(service.submit(p, cfg));
    for (auto& f : fs) narrow.push_back(f.get());
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    ASSERT_EQ(wide[i].success, narrow[i].success);
    ASSERT_EQ(wide[i].answers.size(), narrow[i].answers.size());
    for (std::size_t a = 0; a < wide[i].answers.size(); ++a) {
      EXPECT_EQ(wide[i].answers[a], narrow[i].answers[a]);
    }
    for (std::size_t pi = 0; pi < wide[i].per_prime.size(); ++pi) {
      EXPECT_EQ(wide[i].per_prime[pi].answer_residues,
                narrow[i].per_prime[pi].answer_residues);
    }
  }
}

TEST(ProofService, DestructorDrainsQueuedJobs) {
  auto problems = four_problems();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  std::vector<std::future<RunReport>> futures;
  {
    ProofService service({.num_workers = 1});
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& p : problems) {
        futures.push_back(service.submit(p, cfg));
      }
    }
    // Service goes out of scope with most jobs still queued.
  }
  for (auto& f : futures) {
    RunReport report = f.get();  // never a broken promise
    EXPECT_TRUE(report.success);
  }
}

TEST(ProofService, RejectsNullProblem) {
  ProofService service({.num_workers = 1});
  EXPECT_THROW(service.submit(nullptr), std::invalid_argument);
}

// Delegating problem that records the execution order of jobs: the
// first make_evaluator call of a job happens when a worker starts its
// first prime task, so first-occurrence order in the log is the
// scheduler's dispatch order.
class TaggedProblem final : public CamelotProblem {
 public:
  TaggedProblem(std::shared_ptr<const CamelotProblem> inner, std::string tag,
                std::shared_ptr<std::vector<std::string>> log,
                std::shared_ptr<std::mutex> mu)
      : inner_(std::move(inner)),
        tag_(std::move(tag)),
        log_(std::move(log)),
        mu_(std::move(mu)) {}

  std::string name() const override { return inner_->name(); }
  ProofSpec spec() const override { return inner_->spec(); }
  std::unique_ptr<Evaluator> make_evaluator(const FieldOps& f) const override {
    {
      std::lock_guard<std::mutex> lock(*mu_);
      log_->push_back(tag_);
    }
    return inner_->make_evaluator(f);
  }
  std::vector<u64> recover(const Poly& proof,
                           const PrimeField& f) const override {
    return inner_->recover(proof, f);
  }

 private:
  std::shared_ptr<const CamelotProblem> inner_;
  std::string tag_;
  std::shared_ptr<std::vector<std::string>> log_;
  std::shared_ptr<std::mutex> mu_;
};

TEST(ProofService, BoundedQueueRejectsOverload) {
  ProofService service(
      {.num_workers = 1, .threads_per_session = 1, .max_pending_jobs = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;

  auto problems = four_problems();
  std::vector<std::future<RunReport>> futures;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(service.submit(problems[0], cfg));
  }
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    RunReport report = f.get();
    if (report.status == JobStatus::kRejected) {
      ++rejected;
      EXPECT_FALSE(report.success);
      EXPECT_TRUE(report.answers.empty());
    } else {
      ++ok;
      EXPECT_EQ(report.status, JobStatus::kOk);
      EXPECT_TRUE(report.success);
    }
  }
  // One worker against an instant burst of 8 with room for 2: at
  // least the submissions racing the very first job must bounce.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + rejected, static_cast<std::size_t>(kBurst));
  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted, ok);
  EXPECT_EQ(stats.completed, ok);
}

// Delegating problem whose evaluators sleep before each chunk: keeps
// a job in flight long enough for its deadline to expire mid-prime.
class SlowProblem final : public CamelotProblem {
 public:
  SlowProblem(std::shared_ptr<const CamelotProblem> inner,
              std::chrono::milliseconds per_chunk)
      : inner_(std::move(inner)), per_chunk_(per_chunk) {}
  std::string name() const override { return inner_->name(); }
  ProofSpec spec() const override { return inner_->spec(); }
  std::unique_ptr<Evaluator> make_evaluator(const FieldOps& f) const override {
    class SlowEvaluator final : public Evaluator {
     public:
      SlowEvaluator(std::unique_ptr<Evaluator> inner,
                    std::chrono::milliseconds delay, const FieldOps& f)
          : Evaluator(f), inner_(std::move(inner)), delay_(delay) {}
      u64 eval(u64 x0) override { return inner_->eval(x0); }
      std::vector<u64> evaluate_points(std::span<const u64> xs) override {
        std::this_thread::sleep_for(delay_);
        return inner_->evaluate_points(xs);
      }

     private:
      std::unique_ptr<Evaluator> inner_;
      std::chrono::milliseconds delay_;
    };
    return std::make_unique<SlowEvaluator>(inner_->make_evaluator(f),
                                           per_chunk_, f);
  }
  std::vector<u64> recover(const Poly& proof,
                           const PrimeField& f) const override {
    return inner_->recover(proof, f);
  }

 private:
  std::shared_ptr<const CamelotProblem> inner_;
  std::chrono::milliseconds per_chunk_;
};

TEST(ProofService, DeadlineExpiresQueuedJob) {
  ProofService service({.num_workers = 1});
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;
  auto problems = four_problems();

  // Occupy the single worker with slow evaluators (the systematic
  // fast path made the plain problems finish in well under a
  // millisecond), then queue a job whose deadline will have passed by
  // the time the worker reaches it. The sleep lets the worker sink
  // into the first blocker chunk before the doomed job is submitted —
  // deadline-bearing tasks sort ahead of deadline-less ones, so an
  // idle worker would otherwise run the doomed job first.
  std::vector<std::future<RunReport>> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(service.submit(
        std::make_shared<SlowProblem>(problems[i % problems.size()],
                                      std::chrono::milliseconds(30)),
        cfg));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SubmitOptions doomed;
  doomed.deadline = std::chrono::milliseconds(1);
  std::future<RunReport> expired =
      service.submit(problems[3], cfg, nullptr, doomed);

  RunReport report = expired.get();
  EXPECT_EQ(report.status, JobStatus::kDeadlineExpired);
  EXPECT_FALSE(report.success);
  EXPECT_TRUE(report.answers.empty());
  for (auto& f : blockers) {
    EXPECT_TRUE(f.get().success);  // deadline never harms other jobs
  }
  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 3u);

  // A generous deadline does not interfere with completion.
  SubmitOptions relaxed;
  relaxed.deadline = std::chrono::minutes(10);
  RunReport fine = service.submit(problems[3], cfg, nullptr, relaxed).get();
  EXPECT_EQ(fine.status, JobStatus::kOk);
  EXPECT_TRUE(fine.success);
}

TEST(ProofService, HigherPriorityJobsDispatchFirst) {
  auto log = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  auto problems = four_problems();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;

  ProofService service({.num_workers = 1});
  // Blockers keep the single worker busy while low/high sit queued
  // (the worker may race ahead and grab one of them as its very first
  // task — which is why only the high-before-low order is asserted).
  std::vector<std::future<RunReport>> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(service.submit(
        std::make_shared<TaggedProblem>(problems[0], "blocker", log, mu),
        cfg));
  }
  auto low = std::make_shared<TaggedProblem>(problems[1], "low", log, mu);
  auto high = std::make_shared<TaggedProblem>(problems[2], "high", log, mu);
  auto f_low = service.submit(low, cfg, nullptr, SubmitOptions{.priority = 0});
  auto f_high =
      service.submit(high, cfg, nullptr, SubmitOptions{.priority = 7});
  for (auto& f : blockers) ASSERT_TRUE(f.get().success);
  ASSERT_TRUE(f_low.get().success);
  ASSERT_TRUE(f_high.get().success);

  auto first_of = [&](const std::string& tag) {
    for (std::size_t i = 0; i < log->size(); ++i) {
      if ((*log)[i] == tag) return i;
    }
    return log->size();
  };
  EXPECT_LT(first_of("high"), first_of("low"));
}

// Problem whose evaluators throw: job failures must surface through
// the submitter's future, not kill a worker thread.
class ThrowingProblem final : public CamelotProblem {
 public:
  explicit ThrowingProblem(std::shared_ptr<const CamelotProblem> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  ProofSpec spec() const override { return inner_->spec(); }
  std::unique_ptr<Evaluator> make_evaluator(const FieldOps&) const override {
    throw std::runtime_error("ThrowingProblem: evaluator construction");
  }
  std::vector<u64> recover(const Poly& proof,
                           const PrimeField& f) const override {
    return inner_->recover(proof, f);
  }

 private:
  std::shared_ptr<const CamelotProblem> inner_;
};

TEST(ProofService, JobExceptionsPropagateThroughFuture) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  auto problems = four_problems();

  auto bad = std::make_shared<ThrowingProblem>(problems[0]);
  EXPECT_THROW(service.submit(bad, cfg).get(), std::runtime_error);
  // The worker survived; healthy jobs still serve.
  EXPECT_TRUE(service.submit(problems[0], cfg).get().success);
  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ProofService, DeadlineExpiryStopsInFlightPrimes) {
  // One worker, one job: the worker starts the job while its deadline
  // is still in the future, so the expiry can only be observed at a
  // chunk boundary *inside* run_prime_streaming — the in-flight
  // cancellation path, not the pre-start check.
  ProofService service({.num_workers = 1});
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_threads = 1;
  cfg.num_primes = 2;
  auto problems = four_problems();
  // Full run would sleep 2 primes x 8 chunks x 50 ms = 800 ms.
  auto slow = std::make_shared<SlowProblem>(problems[0],
                                            std::chrono::milliseconds(50));
  SubmitOptions opt;
  opt.deadline = std::chrono::milliseconds(120);
  const auto t0 = std::chrono::steady_clock::now();
  RunReport report = service.submit(slow, cfg, nullptr, opt).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(report.status, JobStatus::kDeadlineExpired);
  EXPECT_FALSE(report.success);
  // The job aborted at a chunk boundary shortly after its deadline,
  // far before the 800 ms an uncancelled run would sleep.
  EXPECT_LT(elapsed, std::chrono::milliseconds(650));
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(ProofSession, CancelProbeAbortsPrimeAndResets) {
  auto problems = four_problems();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_threads = 1;
  ProofSession session(*problems[0], cfg);
  LosslessStreamingChannel channel;
  int polls = 0;
  EXPECT_THROW(session.run_prime_streaming(
                   0, channel,
                   [&polls] {
                     ++polls;
                     return true;
                   }),
               SessionCancelled);
  EXPECT_GT(polls, 0);
  // The aborted prime is back at kCreated, and a fresh un-cancelled
  // run of the same prime completes normally.
  EXPECT_EQ(session.stage(0), SessionStage::kCreated);
  session.run_prime_streaming(0, channel);
  EXPECT_EQ(session.stage(0), SessionStage::kRecovered);
}

TEST(ProofService, EqualPriorityTasksRunEarliestDeadlineFirst) {
  auto log = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  auto problems = four_problems();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;

  ProofService service({.num_workers = 1});
  // Occupy the single worker so the two probes sit queued together.
  std::vector<std::future<RunReport>> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(service.submit(
        std::make_shared<TaggedProblem>(problems[0], "blocker", log, mu),
        cfg));
  }
  auto fifo = std::make_shared<TaggedProblem>(problems[1], "fifo", log, mu);
  auto edf = std::make_shared<TaggedProblem>(problems[2], "edf", log, mu);
  // Same priority; the earlier-submitted job has no deadline, the
  // later one a (generous) deadline — EDF must reorder them.
  auto f_fifo = service.submit(fifo, cfg);
  SubmitOptions with_deadline;
  with_deadline.deadline = std::chrono::minutes(10);
  auto f_edf = service.submit(edf, cfg, nullptr, with_deadline);
  for (auto& f : blockers) ASSERT_TRUE(f.get().success);
  ASSERT_TRUE(f_fifo.get().success);
  ASSERT_TRUE(f_edf.get().success);

  auto first_of = [&](const std::string& tag) {
    for (std::size_t i = 0; i < log->size(); ++i) {
      if ((*log)[i] == tag) return i;
    }
    return log->size();
  };
  EXPECT_LT(first_of("edf"), first_of("fifo"));
}

TEST(ProofService, PredictiveSheddingRejectsInfeasibleDeadline) {
  ProofServiceConfig svc;
  svc.num_workers = 1;
  svc.shed_min_samples = 4;  // shorter calibration than the default 8
  ProofService service(svc);
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;
  auto problems = four_problems();
  auto slow = std::make_shared<SlowProblem>(problems[0],
                                            std::chrono::milliseconds(20));

  // Calibrate the job-latency histogram with completions well above
  // the doomed deadline (4 chunks x 20 ms each).
  for (std::size_t i = 0; i < svc.shed_min_samples; ++i) {
    ASSERT_TRUE(service.submit(slow, cfg).get().success);
  }

  // Infeasible: 1 ms deadline against a calibrated p95 of ~100 ms.
  // Shed at submit — the future is ready immediately, no worker ran.
  SubmitOptions tight;
  tight.deadline = std::chrono::milliseconds(1);
  std::future<RunReport> doomed =
      service.submit(slow, cfg, nullptr, tight);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  RunReport report = doomed.get();
  EXPECT_EQ(report.status, JobStatus::kRejected);
  EXPECT_FALSE(report.success);
  ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.shed_infeasible, 1u);
  EXPECT_EQ(stats.rejected, 1u);  // sheds count as rejections

  // The same job with a generous deadline passes the predictor and
  // completes.
  SubmitOptions generous;
  generous.deadline = std::chrono::minutes(10);
  RunReport fine = service.submit(slow, cfg, nullptr, generous).get();
  EXPECT_EQ(fine.status, JobStatus::kOk);
  EXPECT_TRUE(fine.success);
  stats = service.stats();
  EXPECT_EQ(stats.shed_infeasible, 1u);
  EXPECT_EQ(stats.completed, svc.shed_min_samples + 1);
}

TEST(ProofService, PerPriorityBoundIsolatesPriorityClasses) {
  ProofServiceConfig svc;
  svc.num_workers = 1;
  svc.max_pending_by_priority = {{0, 1}};  // priority 0: one job at a time
  ProofService service(svc);
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;
  auto problems = four_problems();
  auto slow = std::make_shared<SlowProblem>(problems[0],
                                            std::chrono::milliseconds(50));

  // First priority-0 job fills that priority's bound while it runs.
  auto running = service.submit(slow, cfg);
  // Second priority-0 submit bounces off the per-priority bound...
  RunReport bounced = service.submit(slow, cfg).get();
  EXPECT_EQ(bounced.status, JobStatus::kRejected);
  // ...while an unbounded priority class is still admitted.
  auto urgent =
      service.submit(problems[1], cfg, nullptr, SubmitOptions{.priority = 5});
  EXPECT_TRUE(running.get().success);
  EXPECT_TRUE(urgent.get().success);
  const ProofService::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed_infeasible, 0u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ProofService, AutoscalerGrowsUnderLoadAndConvergesToMin) {
  ProofServiceConfig svc;
  svc.max_workers = 4;
  svc.min_workers = 1;
  svc.autoscale_idle = std::chrono::milliseconds(50);
  ProofService service(svc);
  EXPECT_EQ(service.stats().workers_active, 1u);  // starts at min

  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.redundancy = 2.0;
  auto problems = four_problems();
  std::vector<std::future<RunReport>> futures;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& p : problems) {
      futures.push_back(service.submit(
          std::make_shared<SlowProblem>(p, std::chrono::milliseconds(10)),
          cfg));
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().success);

  ProofService::Stats stats = service.stats();
  // The backlog grew the pool, but never past max_workers.
  EXPECT_GT(stats.workers_peak, 1u);
  EXPECT_LE(stats.workers_peak, 4u);
  EXPECT_LE(stats.workers_active, 4u);
  EXPECT_EQ(stats.completed, futures.size());

  // Idle workers retire back down to min_workers.
  for (int i = 0; i < 200 && service.stats().workers_active > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(service.stats().workers_active, 1u);

  // The shrunken pool still serves.
  EXPECT_TRUE(service.submit(problems[0], cfg).get().success);
}

TEST(ProofService, SharesCodeCacheAcrossJobs) {
  ProofService service({.num_workers = 2});
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  auto problems = four_problems();

  RunReport first = service.submit(problems[0], cfg).get();
  ASSERT_TRUE(first.success);
  const CodeCache::Stats cold = service.code_cache()->stats();
  EXPECT_GT(cold.misses, 0u);

  // A spec-identical job (same problem resubmitted) reuses every
  // (prime, d, e) code: no new tree builds.
  RunReport second = service.submit(problems[0], cfg).get();
  ASSERT_TRUE(second.success);
  const CodeCache::Stats warm = service.code_cache()->stats();
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GE(warm.hits, cold.hits + cold.misses);
  ASSERT_EQ(first.answers.size(), second.answers.size());
  for (std::size_t a = 0; a < first.answers.size(); ++a) {
    EXPECT_EQ(first.answers[a], second.answers[a]);
  }
}

}  // namespace
}  // namespace camelot
