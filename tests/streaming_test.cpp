// Tests for the streaming transport layer: SymbolStream mechanics,
// corruption-plan equivalence, golden streaming-vs-barrier agreement
// (bit-for-bit RunReports on all three backends), adversarial streams
// under concurrent load, and rate-limited (congested-clique style)
// delivery.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <random>

#include "apps/conv3sum.hpp"
#include "apps/csp2.hpp"
#include "apps/hamming.hpp"
#include "apps/ov.hpp"
#include "core/proof_session.hpp"
#include "core/rng.hpp"
#include "core/symbol_stream.hpp"
#include "linalg/tensor.hpp"
#include "rs/code_cache.hpp"
#include "rs/gao.hpp"

namespace camelot {
namespace {

ClusterConfig small_config(std::size_t nodes = 4, double redundancy = 1.5) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.redundancy = redundancy;
  return cfg;
}

std::unique_ptr<CamelotProblem> make_app_problem(int which) {
  switch (which) {
    case 0:
      return std::make_unique<OrthogonalVectorsProblem>(
          BoolMatrix::random(8, 5, 0.35, 11),
          BoolMatrix::random(8, 5, 0.35, 22));
    case 1:
      return std::make_unique<HammingDistributionProblem>(
          BoolMatrix::random(6, 4, 0.4, 33),
          BoolMatrix::random(6, 4, 0.4, 44));
    case 2:
      return std::make_unique<Conv3SumProblem>(
          std::vector<u64>{3, 1, 4, 1, 5, 9, 2, 6}, 6u);
    default:
      return std::make_unique<Csp2Problem>(
          Csp2Instance::random(6, 2, 4, 0.5, 77), strassen_decomposition());
  }
}

// Strict structural equality: answers, per-prime decode/verify state,
// corrected symbols, implicated nodes and residues must all match.
void expect_reports_equal(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i], b.answers[i]) << "answer " << i;
  }
  ASSERT_EQ(a.per_prime.size(), b.per_prime.size());
  for (std::size_t pi = 0; pi < a.per_prime.size(); ++pi) {
    EXPECT_EQ(a.per_prime[pi].prime, b.per_prime[pi].prime);
    EXPECT_EQ(a.per_prime[pi].decode_status, b.per_prime[pi].decode_status);
    EXPECT_EQ(a.per_prime[pi].verified, b.per_prime[pi].verified);
    EXPECT_EQ(a.per_prime[pi].answer_residues,
              b.per_prime[pi].answer_residues);
    EXPECT_EQ(a.per_prime[pi].corrected_symbols,
              b.per_prime[pi].corrected_symbols);
    EXPECT_EQ(a.per_prime[pi].implicated_nodes,
              b.per_prime[pi].implicated_nodes);
  }
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t j = 0; j < a.node_stats.size(); ++j) {
    EXPECT_EQ(a.node_stats[j].symbols_computed,
              b.node_stats[j].symbols_computed);
  }
}

// ---- SymbolStream mechanics ---------------------------------------------

StreamSpec spec_for(const PrimeField& f, std::span<const std::size_t> owners,
                    std::span<const u64> points, u64 seed = 42) {
  StreamSpec spec;
  spec.prime = f.modulus();
  spec.code_length = owners.size();
  spec.owners = owners;
  spec.points = points;
  spec.field = &f;
  spec.stream_seed = seed;
  return spec;
}

TEST(SymbolStream, LosslessPushPollRoundTrip) {
  PrimeField f(97);
  std::vector<std::size_t> owners(10, 0);
  std::vector<u64> points(10);
  std::iota(points.begin(), points.end(), u64{1});
  auto stream = LosslessStreamingChannel().open(spec_for(f, owners, points));

  EXPECT_FALSE(stream->poll().has_value());
  EXPECT_FALSE(stream->exhausted());
  stream->push({.offset = 4, .node = 1, .symbols = {40, 50, 60}});
  stream->push({.offset = 0, .node = 0, .symbols = {1, 2}});
  auto first = stream->poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->offset, 4u);
  EXPECT_EQ(first->symbols, (std::vector<u64>{40, 50, 60}));
  stream->close();
  EXPECT_FALSE(stream->exhausted());  // one chunk still buffered
  auto second = stream->poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->offset, 0u);
  EXPECT_TRUE(stream->exhausted());
  EXPECT_FALSE(stream->poll().has_value());
  EXPECT_THROW(stream->push({.offset = 6, .node = 2, .symbols = {1}}),
               std::logic_error);
}

TEST(SymbolStream, RejectsOutOfRangeChunk) {
  PrimeField f(97);
  std::vector<std::size_t> owners(4, 0);
  std::vector<u64> points = {1, 2, 3, 4};
  auto stream = LosslessStreamingChannel().open(spec_for(f, owners, points));
  EXPECT_THROW(stream->push({.offset = 3, .node = 0, .symbols = {7, 7}}),
               std::logic_error);
}

TEST(SymbolStream, RateLimitedSplitsChunksAcrossPolls) {
  PrimeField f(97);
  std::vector<std::size_t> owners(8, 0);
  std::vector<u64> points(8);
  std::iota(points.begin(), points.end(), u64{1});
  RateLimitedStreamingChannel channel(/*symbols_per_poll=*/3);
  auto stream = channel.open(spec_for(f, owners, points));
  stream->push({.offset = 0, .node = 0, .symbols = {1, 2, 3, 4, 5, 6, 7, 8}});
  stream->close();

  std::vector<u64> got(8, 0);
  std::size_t polls = 0;
  while (!stream->exhausted()) {
    auto c = stream->poll();
    ASSERT_TRUE(c.has_value());
    EXPECT_LE(c->symbols.size(), 3u);
    for (std::size_t j = 0; j < c->symbols.size(); ++j) {
      got[c->offset + j] = c->symbols[j];
    }
    ++polls;
  }
  EXPECT_EQ(polls, 3u);  // 3 + 3 + 2
  EXPECT_EQ(got, (std::vector<u64>{1, 2, 3, 4, 5, 6, 7, 8}));
}

// The streaming adversary must corrupt chunk-by-chunk exactly as the
// barrier adversary corrupts the whole word, independent of chunk
// arrival order.
TEST(SymbolStream, AdversarialStreamMatchesBarrierCorruption) {
  PrimeField f(101);
  const std::size_t e = 24;
  std::vector<std::size_t> owners(e);
  for (std::size_t i = 0; i < e; ++i) owners[i] = i / 6;  // 4 nodes
  std::vector<u64> points(e);
  std::iota(points.begin(), points.end(), u64{1});
  std::vector<u64> word(e);
  std::mt19937_64 rng(7);
  for (u64& v : word) v = rng() % 101;

  for (ByzantineStrategy strategy :
       {ByzantineStrategy::kSilent, ByzantineStrategy::kRandom,
        ByzantineStrategy::kOffByOne,
        ByzantineStrategy::kColludingPolynomial}) {
    ByzantineAdversary adversary({1, 3}, strategy, 999);
    const u64 stream_seed = derive_stream(5, 101, PipelineStage::kTransport);

    std::vector<u64> barrier = word;
    adversary.corrupt(barrier, owners, points, f, stream_seed);

    AdversarialStreamingChannel channel(adversary);
    auto stream =
        channel.open(spec_for(f, owners, points, stream_seed));
    // Push node chunks in scrambled order, middle chunk split in two.
    stream->push({.offset = 18, .node = 3,
                  .symbols = {word.begin() + 18, word.end()}});
    stream->push({.offset = 6, .node = 1,
                  .symbols = {word.begin() + 6, word.begin() + 9}});
    stream->push({.offset = 9, .node = 1,
                  .symbols = {word.begin() + 9, word.begin() + 12}});
    stream->push({.offset = 0, .node = 0,
                  .symbols = {word.begin(), word.begin() + 6}});
    stream->push({.offset = 12, .node = 2,
                  .symbols = {word.begin() + 12, word.begin() + 18}});
    stream->close();

    std::vector<u64> streamed(e, 0);
    while (auto c = stream->poll()) {
      for (std::size_t j = 0; j < c->symbols.size(); ++j) {
        streamed[c->offset + j] = c->symbols[j];
      }
    }
    EXPECT_EQ(streamed, barrier)
        << "strategy " << static_cast<int>(strategy);
  }
}

// ---- StreamingGaoDecoder -------------------------------------------------

TEST(StreamingGaoDecoder, OutOfOrderAbsorbMatchesOneShotDecode) {
  FieldOps ops(PrimeField(409));
  ReedSolomonCode code(ops, /*degree_bound=*/7, /*length=*/24);
  Poly message;
  message.c = {5, 1, 0, 3, 9, 2, 7, 4};
  std::vector<u64> word = code.encode(message);
  word[3] = (word[3] + 11) % 409;  // one corrupted symbol
  word[17] = (word[17] + 23) % 409;

  const GaoResult oneshot = gao_decode(code, word);
  ASSERT_EQ(oneshot.status, DecodeStatus::kOk);

  StreamingGaoDecoder decoder(code);
  EXPECT_FALSE(decoder.ready());
  EXPECT_THROW(decoder.finish(), std::logic_error);
  decoder.absorb(16, std::span<const u64>(word.data() + 16, 8));
  decoder.absorb(0, std::span<const u64>(word.data(), 8));
  decoder.absorb(8, std::span<const u64>(word.data() + 8, 8));
  EXPECT_TRUE(decoder.ready());
  EXPECT_THROW(decoder.absorb(0, std::span<const u64>(word.data(), 1)),
               std::logic_error);

  const GaoResult streamed = decoder.finish();
  EXPECT_EQ(streamed.status, oneshot.status);
  EXPECT_EQ(streamed.message.c, oneshot.message.c);
  EXPECT_EQ(streamed.error_locations, oneshot.error_locations);
  EXPECT_EQ(streamed.corrected, oneshot.corrected);
}

// ---- Streaming pipeline vs barrier pipeline ------------------------------

class StreamingGolden : public ::testing::TestWithParam<int> {};

TEST_P(StreamingGolden, StreamingMatchesBarrierOnAllBackends) {
  const auto problem = make_app_problem(GetParam());
  for (FieldBackend backend :
       {FieldBackend::kMontgomery, FieldBackend::kPrimeDivision,
        FieldBackend::kMontgomeryAvx2}) {
    ClusterConfig cfg = small_config();
    cfg.backend = backend;
    ProofSession barrier_session(*problem, cfg);
    const RunReport barrier = barrier_session.run_barrier();
    ASSERT_TRUE(barrier.success);

    ProofSession streaming_session(*problem, cfg);
    const RunReport streamed =
        streaming_session.run_streaming(LosslessStreamingChannel());
    expect_reports_equal(barrier, streamed);
  }
}

TEST_P(StreamingGolden, AdversarialStreamingMatchesBarrier) {
  const auto problem = make_app_problem(GetParam());
  ClusterConfig cfg = small_config(/*nodes=*/6, /*redundancy=*/3.0);
  cfg.num_primes = 2;
  ByzantineAdversary adversary({1, 4}, ByzantineStrategy::kRandom, 321);

  ProofSession barrier_session(*problem, cfg);
  const RunReport barrier = barrier_session.run_barrier(&adversary);
  ASSERT_TRUE(barrier.success);

  ProofSession streaming_session(*problem, cfg);
  const RunReport streamed =
      streaming_session.run_streaming(AdversarialStreamingChannel(adversary));
  expect_reports_equal(barrier, streamed);
  EXPECT_EQ(streaming_session.implicated_nodes(),
            (std::vector<std::size_t>{1, 4}));
}

INSTANTIATE_TEST_SUITE_P(Apps, StreamingGolden, ::testing::Values(0, 1, 2, 3));

TEST(StreamingPipeline, AdversarialChannelUnderConcurrentLoad) {
  // Many evaluation threads racing over several primes' chunks while
  // Morgana corrupts in flight: the outcome must equal the serial run
  // bit for bit, on every repetition.
  const auto problem = make_app_problem(0);
  ClusterConfig cfg = small_config(/*nodes=*/8, /*redundancy=*/3.0);
  cfg.num_primes = 3;
  ByzantineAdversary adversary({2, 5}, ByzantineStrategy::kColludingPolynomial,
                               777);
  AdversarialStreamingChannel channel(adversary);

  cfg.num_threads = 1;
  ProofSession serial(*problem, cfg);
  const RunReport reference = serial.run_streaming(channel);
  ASSERT_TRUE(reference.success);
  EXPECT_EQ(serial.implicated_nodes(), (std::vector<std::size_t>{2, 5}));

  cfg.num_threads = 8;
  for (int rep = 0; rep < 5; ++rep) {
    ProofSession racy(*problem, cfg);
    expect_reports_equal(reference, racy.run_streaming(channel));
  }
}

TEST(StreamingPipeline, RateLimitedChannelDeliversEverything) {
  // A congested broadcast (few symbols per round) changes only the
  // schedule, never the result — with and without corruption inside.
  const auto problem = make_app_problem(2);
  ClusterConfig cfg = small_config(/*nodes=*/4, /*redundancy=*/2.0);
  cfg.num_threads = 3;

  ProofSession plain(*problem, cfg);
  const RunReport reference = plain.run_streaming(LosslessStreamingChannel());
  ASSERT_TRUE(reference.success);

  RateLimitedStreamingChannel trickle(/*symbols_per_poll=*/5);
  ProofSession limited(*problem, cfg);
  expect_reports_equal(reference, limited.run_streaming(trickle));

  ByzantineAdversary adversary({0}, ByzantineStrategy::kOffByOne, 11);
  AdversarialStreamingChannel dark(adversary);
  RateLimitedStreamingChannel dark_trickle(/*symbols_per_poll=*/7, &dark);
  ProofSession corrupted(*problem, cfg);
  ProofSession corrupted_limited(*problem, cfg);
  expect_reports_equal(
      corrupted.run_streaming(dark),
      corrupted_limited.run_streaming(dark_trickle));
}

TEST(StreamingPipeline, RunPrimeStreamingDrivesSinglePrime) {
  const auto problem = make_app_problem(0);
  ClusterConfig cfg = small_config(/*nodes=*/6, /*redundancy=*/3.0);
  cfg.num_primes = 2;
  cfg.num_threads = 1;

  ProofSession s(*problem, cfg);
  ASSERT_EQ(s.num_primes(), 2u);
  LosslessStreamingChannel channel;
  s.run_prime_streaming(0, channel);
  EXPECT_EQ(s.stage(0), SessionStage::kRecovered);
  EXPECT_EQ(s.stage(1), SessionStage::kCreated);
  EXPECT_FALSE(s.complete());
  s.run_prime_streaming(1, channel);
  EXPECT_TRUE(s.complete());

  ProofSession whole(*problem, cfg);
  expect_reports_equal(whole.run_streaming(channel), s.report());
}

TEST(StreamingPipeline, WorkerExceptionsReachTheCaller) {
  // A throwing evaluator inside the streaming worker pool must
  // propagate out of run()/run_streaming on the calling thread.
  class ThrowingProblem final : public CamelotProblem {
   public:
    std::string name() const override { return "throwing"; }
    ProofSpec spec() const override {
      ProofSpec s;
      s.degree_bound = 16;
      s.answer_bound = BigInt::from_u64(100);
      return s;
    }
    std::unique_ptr<Evaluator> make_evaluator(const FieldOps&) const override {
      throw std::runtime_error("ThrowingProblem: evaluator construction");
    }
    std::vector<u64> recover(const Poly&, const PrimeField&) const override {
      return {0};
    }
  };
  ThrowingProblem problem;
  ClusterConfig cfg = small_config();
  cfg.num_threads = 4;
  ProofSession s(problem, cfg);
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_THROW(ProofSession(problem, cfg).run_prime_streaming(
                   0, LosslessStreamingChannel()),
               std::runtime_error);
}

TEST(StreamingPipeline, SharedCodeCacheAcrossSessions) {
  const auto problem = make_app_problem(0);
  const ClusterConfig cfg = small_config();
  auto codes = std::make_shared<CodeCache>();

  ProofSession first(*problem, cfg, nullptr, nullptr, codes);
  const RunReport a = first.run();
  ASSERT_TRUE(a.success);
  const CodeCache::Stats cold = codes->stats();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.hits, 0u);

  ProofSession second(*problem, cfg, nullptr, nullptr, codes);
  const RunReport b = second.run();
  const CodeCache::Stats warm = codes->stats();
  EXPECT_EQ(warm.misses, cold.misses);  // every code reused
  EXPECT_GE(warm.hits, cold.misses);
  expect_reports_equal(a, b);
}

}  // namespace
}  // namespace camelot
