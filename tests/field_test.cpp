#include "field/field.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"

namespace camelot {
namespace {

TEST(PrimeField, RejectsComposite) {
  EXPECT_THROW(PrimeField(91), std::invalid_argument);
  EXPECT_THROW(PrimeField(1), std::invalid_argument);
  EXPECT_THROW(PrimeField(0), std::invalid_argument);
}

TEST(PrimeField, RejectsTooLarge) {
  EXPECT_THROW(PrimeField(u64{1} << 62), std::invalid_argument);
}

TEST(PrimeField, BasicOpsSmall) {
  PrimeField f(17);
  EXPECT_EQ(f.add(9, 12), 4u);
  EXPECT_EQ(f.sub(3, 9), 11u);
  EXPECT_EQ(f.mul(5, 7), 1u);
  EXPECT_EQ(f.neg(0), 0u);
  EXPECT_EQ(f.neg(5), 12u);
  EXPECT_EQ(f.pow(2, 4), 16u);
  EXPECT_EQ(f.pow(3, 0), 1u);
}

TEST(PrimeField, InverseRoundTrip) {
  PrimeField f(1'000'003);
  for (u64 a : {1ull, 2ull, 999'999ull, 123'456ull}) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << a;
  }
  EXPECT_THROW(f.inv(0), std::invalid_argument);
}

TEST(PrimeField, FermatHolds) {
  PrimeField f(101);
  for (u64 a = 1; a < 101; ++a) {
    EXPECT_EQ(f.pow(a, 100), 1u);
  }
}

TEST(PrimeField, TwoAdicityAndRoots) {
  // 97 - 1 = 96 = 2^5 * 3.
  PrimeField f(97);
  EXPECT_EQ(f.two_adicity(), 5);
  for (int k = 0; k <= 5; ++k) {
    u64 w = f.root_of_unity(k);
    EXPECT_EQ(f.pow(w, u64{1} << k), 1u);
    if (k > 0) {
      EXPECT_NE(f.pow(w, u64{1} << (k - 1)), 1u)
          << "root of unity order not exact at k=" << k;
    }
  }
  EXPECT_THROW(f.root_of_unity(6), std::invalid_argument);
}

TEST(PrimeField, GeneratorHasFullOrder) {
  for (u64 q : {5ull, 97ull, 7681ull, 1'000'003ull}) {
    PrimeField f(q);
    u64 g = f.generator();
    EXPECT_EQ(f.pow(g, q - 1), 1u);
    auto factors = factorize(q - 1);
    for (auto [p, _] : factors) {
      EXPECT_NE(f.pow(g, (q - 1) / p), 1u)
          << "generator has small order for q=" << q;
    }
  }
}

TEST(PrimeField, LargeModulusMul) {
  // q just below 2^61.
  u64 q = next_prime((u64{1} << 61) - 100);
  PrimeField f(q);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    u64 a = rng() % q, b = rng() % q;
    u64 m = f.mul(a, b);
    EXPECT_LT(m, q);
    // Check against u128 reference.
    EXPECT_EQ(m, static_cast<u64>((static_cast<u128>(a) * b) % q));
  }
}

TEST(PrimeField, BatchInvMatchesScalar) {
  PrimeField f(7681);
  std::mt19937_64 rng(3);
  std::vector<u64> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(1 + rng() % 7680);
  auto inv = f.batch_inv(xs);
  ASSERT_EQ(inv.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(inv[i], f.inv(xs[i]));
  }
}

TEST(PrimeField, BatchInvRejectsZero) {
  PrimeField f(17);
  EXPECT_THROW(f.batch_inv({1, 0, 2}), std::invalid_argument);
}

TEST(PrimeField, FromSigned) {
  PrimeField f(13);
  EXPECT_EQ(f.from_signed(-1), 12u);
  EXPECT_EQ(f.from_signed(-13), 0u);
  EXPECT_EQ(f.from_signed(-27), 12u);
  EXPECT_EQ(f.from_signed(27), 1u);
}

class FieldAxioms : public ::testing::TestWithParam<u64> {};

TEST_P(FieldAxioms, RingLaws) {
  PrimeField f(GetParam());
  std::mt19937_64 rng(GetParam());
  const u64 q = f.modulus();
  for (int i = 0; i < 50; ++i) {
    u64 a = rng() % q, b = rng() % q, c = rng() % q;
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.mul(a, f.one()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, FieldAxioms,
                         ::testing::Values(2, 3, 17, 97, 7681, 65537,
                                           1'000'003, 2'013'265'921));

}  // namespace
}  // namespace camelot
