#include "yates/poly_ext.hpp"
#include "yates/split_sparse.hpp"
#include "yates/yates.hpp"

#include <gtest/gtest.h>

#include <random>

#include "field/primes.hpp"
#include "poly/lagrange.hpp"

namespace camelot {
namespace {

std::vector<u64> random_vector(std::size_t n, const PrimeField& f,
                               std::mt19937_64& rng) {
  std::vector<u64> v(n);
  for (u64& x : v) x = rng() % f.modulus();
  return v;
}

std::vector<u64> random_base(std::size_t t, std::size_t s,
                             const PrimeField& f, std::mt19937_64& rng) {
  std::vector<u64> b(t * s);
  for (u64& x : b) x = rng() % f.modulus();
  return b;
}

TEST(Yates, IdentityBase) {
  PrimeField f(97);
  std::mt19937_64 rng(1);
  // A = I (2x2): the transform is the identity for any k.
  std::vector<u64> base = {1, 0, 0, 1};
  auto x = random_vector(8, f, rng);
  auto y = yates_apply(f, base, 2, 2, x, 3);
  EXPECT_EQ(y, x);
}

TEST(Yates, SingleLevelIsMatrixVector) {
  PrimeField f(101);
  std::mt19937_64 rng(2);
  auto base = random_base(3, 2, f, rng);
  auto x = random_vector(2, f, rng);
  auto y = yates_apply(f, base, 3, 2, x, 1);
  ASSERT_EQ(y.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(y[i], f.add(f.mul(base[i * 2], x[0]), f.mul(base[i * 2 + 1], x[1])));
  }
}

TEST(Yates, ZeroLevelsIsIdentity) {
  PrimeField f(97);
  std::vector<u64> base = {1, 2, 3, 4};
  std::vector<u64> x = {42};
  auto y = yates_apply(f, base, 2, 2, x, 0);
  EXPECT_EQ(y, x);
}

class YatesShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 unsigned>> {};

TEST_P(YatesShapes, FastMatchesNaive) {
  auto [t, s, k] = GetParam();
  PrimeField f(7681);
  std::mt19937_64 rng(t * 100 + s * 10 + k);
  auto base = random_base(t, s, f, rng);
  auto x = random_vector(ipow(s, k), f, rng);
  auto fast = yates_apply(f, base, t, s, x, k);
  auto naive = yates_apply_naive(f, base, t, s, x, k);
  EXPECT_EQ(fast, naive);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, YatesShapes,
    ::testing::Values(std::tuple<std::size_t, std::size_t, unsigned>{2, 2, 1},
                      std::tuple<std::size_t, std::size_t, unsigned>{2, 2, 4},
                      std::tuple<std::size_t, std::size_t, unsigned>{3, 2, 3},
                      std::tuple<std::size_t, std::size_t, unsigned>{4, 3, 2},
                      std::tuple<std::size_t, std::size_t, unsigned>{7, 4, 2},
                      std::tuple<std::size_t, std::size_t, unsigned>{2, 1, 5},
                      std::tuple<std::size_t, std::size_t, unsigned>{5, 5,
                                                                     2}));

TEST(Yates, SubsetZetaTransform) {
  // Base [[1,0],[1,1]] computes the subset-sum (zeta) transform; check
  // on a known example over k=3 ground elements.
  PrimeField f(1'000'003);
  std::vector<u64> base = {1, 0, 1, 1};
  // x[S] = bitmask value; digits MSB-first means bit 0 of our index is
  // the LAST digit, which is fine as long as we are consistent.
  std::vector<u64> x = {1, 2, 4, 8, 16, 32, 64, 128};
  auto y = yates_apply(f, base, 2, 2, x, 3);
  for (u64 s = 0; s < 8; ++s) {
    u64 expect = 0;
    for (u64 sub = 0; sub < 8; ++sub) {
      if ((sub & s) == sub) expect += x[sub];
    }
    EXPECT_EQ(y[s], expect) << "S=" << s;
  }
}

TEST(Yates, RejectsBadShapes) {
  PrimeField f(17);
  std::vector<u64> base = {1, 2, 3};  // not t*s
  std::vector<u64> x = {1, 2};
  EXPECT_THROW(yates_apply(f, base, 2, 2, x, 1), std::invalid_argument);
  std::vector<u64> base2 = {1, 2, 3, 4};
  std::vector<u64> x2 = {1, 2, 3};  // not s^k
  EXPECT_THROW(yates_apply(f, base2, 2, 2, x2, 1), std::invalid_argument);
}

std::vector<SparseEntry> sparsify(const std::vector<u64>& x) {
  std::vector<SparseEntry> d;
  for (u64 i = 0; i < x.size(); ++i) {
    if (x[i] != 0) d.push_back({i, x[i]});
  }
  return d;
}

class SplitSparseEll : public ::testing::TestWithParam<int> {};

TEST_P(SplitSparseEll, PartsAssembleToFullTransform) {
  PrimeField f(7681);
  std::mt19937_64 rng(GetParam() + 50);
  const std::size_t t = 3, s = 2;
  const unsigned k = 4;
  auto base = random_base(t, s, f, rng);
  // Sparse input: ~1/4 of entries nonzero.
  std::vector<u64> x(ipow(s, k), 0);
  for (u64 i = 0; i < x.size(); ++i) {
    if (rng() % 4 == 0) x[i] = 1 + rng() % (f.modulus() - 1);
  }
  if (sparsify(x).empty()) x[3] = 7;
  SplitSparseYates ss(f, base, t, s, k, sparsify(x), GetParam());
  auto full = yates_apply(f, base, t, s, x, k);
  ASSERT_EQ(ss.num_parts() * ss.part_size(), full.size());
  for (u64 outer = 0; outer < ss.num_parts(); ++outer) {
    auto part = ss.part(outer);
    ASSERT_EQ(part.size(), ss.part_size());
    for (u64 inner = 0; inner < ss.part_size(); ++inner) {
      EXPECT_EQ(part[inner], full[inner * ss.num_parts() + outer])
          << "outer=" << outer << " inner=" << inner
          << " ell=" << ss.ell();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ells, SplitSparseEll,
                         ::testing::Values(-1, 0, 1, 2, 3, 4));

TEST(SplitSparse, DefaultEllMatchesPaperChoice) {
  PrimeField f(97);
  std::vector<u64> base = {1, 0, 1, 1, 0, 1};  // t=3, s=2
  // |D| = 5 -> ell = ceil(log_3 5) = 2.
  std::vector<SparseEntry> d = {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}};
  SplitSparseYates ss(f, base, 3, 2, 5, d);
  EXPECT_EQ(ss.ell(), 2u);
  EXPECT_EQ(ss.num_parts(), ipow(3, 3));
  EXPECT_EQ(ss.part_size(), 9u);
}

TEST(SplitSparse, RequiresTGeqS) {
  PrimeField f(17);
  std::vector<u64> base = {1, 2, 3, 4, 5, 6};  // 2x3
  std::vector<SparseEntry> d = {{0, 1}};
  EXPECT_THROW(SplitSparseYates(f, base, 2, 3, 2, d), std::invalid_argument);
}

TEST(PolyExt, MatchesSplitSparseOnOuterDomain) {
  PrimeField f(find_ntt_prime(1 << 10, 6));
  std::mt19937_64 rng(60);
  const std::size_t t = 3, s = 3;
  const unsigned k = 3;
  auto base = random_base(t, s, f, rng);
  std::vector<u64> x(ipow(s, k), 0);
  for (u64 i = 0; i < x.size(); ++i) {
    if (rng() % 3 == 0) x[i] = 1 + rng() % (f.modulus() - 1);
  }
  x[0] = 5;
  auto d = sparsify(x);
  for (int ell : {0, 1, 2}) {
    SplitSparseYates ss(f, base, t, s, k, d, ell);
    YatesPolynomialExtension pe(f, base, t, s, k, d, ell);
    ASSERT_EQ(pe.num_outer(), ss.num_parts());
    for (u64 outer = 0; outer < ss.num_parts(); ++outer) {
      // The polynomial extension at z0 = outer+1 equals the part.
      EXPECT_EQ(pe.evaluate(outer + 1), ss.part(outer))
          << "ell=" << ell << " outer=" << outer;
    }
  }
}

TEST(PolyExt, EntriesAreLowDegreePolynomials) {
  // Each part entry, as a function of z0, must be a polynomial of
  // degree <= t^{k-ell}-1: check by interpolating from t^{k-ell}
  // points and predicting a fresh point.
  PrimeField f(find_ntt_prime(1 << 10, 6));
  std::mt19937_64 rng(61);
  const std::size_t t = 2, s = 2;
  const unsigned k = 4;
  std::vector<u64> base = {1, 1, 2, 3};
  std::vector<SparseEntry> d = {{1, 4}, {7, 9}, {11, 2}};
  YatesPolynomialExtension pe(f, base, t, s, k, d, 2);
  const u64 m = pe.num_outer();  // 4
  ASSERT_EQ(pe.poly_degree_bound(), m - 1);
  // Gather values at z0 = 1..m for every entry.
  std::vector<std::vector<u64>> vals(m);
  for (u64 z0 = 1; z0 <= m; ++z0) vals[z0 - 1] = pe.evaluate(z0);
  for (u64 probe : {m + 5, m + 100, u64{500}}) {
    auto got = pe.evaluate(probe);
    for (u64 inner = 0; inner < pe.part_size(); ++inner) {
      std::vector<u64> series(m);
      for (u64 i = 0; i < m; ++i) series[i] = vals[i][inner];
      u64 predicted = lagrange_eval_consecutive(1, series, probe, f);
      EXPECT_EQ(got[inner], predicted) << "inner=" << inner;
    }
  }
}

TEST(PolyExt, FieldTooSmallRejected) {
  PrimeField f(5);
  std::vector<u64> base = {1, 1, 1, 2};
  std::vector<SparseEntry> d = {{0, 1}};
  // num_outer = 2^3 = 8 >= q = 5.
  EXPECT_THROW(YatesPolynomialExtension(f, base, 2, 2, 3, d, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace camelot
